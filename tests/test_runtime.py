"""Tests for the fault-tolerant checkpointed work-stealing runtime.

Exercises genuine process death, not mocks: injected faults kill
workers with ``os._exit`` mid-shard, stall them past the heartbeat
timeout, and drop or corrupt their checkpoint writes. The invariant
under test throughout is *bit-identity* — any fault plan, worker
count, and kill/resume schedule must reproduce the uninterrupted
result exactly, because shard aggregates are pure functions of the
rank range and recovery replays only journaled state.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.core import BoundedBudgetGame, census_scan, weighted_census_scan
from repro.core import enumeration as en
from repro.core.checkpoint import replay_journal, shard_journal_path
from repro.core.matrix_pool import sweep_orphan_segments
from repro.errors import CheckpointError, GameError
from repro.parallel import Fault, FaultPlan, contiguous_shards, run_shards


# ----------------------------------------------------------------------
# A tiny checkpoint-aware shard function for direct run_shards tests
# ----------------------------------------------------------------------
def _sum_shard(payload, ctx=None):
    """Sum of squares over ``range(lo, hi)``, checkpointed like a census."""
    lo, hi, poison_attempts = payload
    start, total = lo, 0
    if ctx is not None and ctx.resume_state is not None:
        start = ctx.resume_state.next_rank
        total = ctx.resume_state.counters["total"]
    if ctx is not None and ctx.attempt < poison_attempts:
        raise RuntimeError(f"poisoned attempt {ctx.attempt}")
    interval = ctx.interval if ctx is not None else hi - lo + 1
    next_cp = start + interval
    for rank in range(start, hi):
        if ctx is not None:
            ctx.tick(rank)
        total += rank * rank
        if ctx is not None and next_cp <= rank + 1 < hi:
            ctx.checkpoint(
                lo=lo, hi=hi, next_rank=rank + 1, counters={"total": total}
            )
            next_cp = rank + 1 + interval
    if ctx is not None:
        ctx.checkpoint(
            lo=lo, hi=hi, next_rank=hi, counters={"total": total}, done=True
        )
    return {"lo": lo, "total": total}


def _sum_result_from_record(record):
    return {"lo": record.lo, "total": record.counters["total"]}


_SHARDS = [(0, 100, 0), (100, 200, 0), (200, 300, 0), (300, 400, 0)]
_EXPECT = [
    {"lo": lo, "total": sum(r * r for r in range(lo, hi))}
    for lo, hi, _ in _SHARDS
]


def _run(tmp_path, payloads=_SHARDS, shard_fn=_sum_shard, **kwargs):
    opts = dict(
        checkpoint_dir=tmp_path,
        workers=2,
        checkpoint_interval=10,
        backoff_base=0.01,
        timeout=120.0,
    )
    opts.update(kwargs)
    return run_shards(shard_fn, payloads, **opts)


def test_run_shards_clean(tmp_path):
    report = _run(tmp_path)
    assert report.results() == _EXPECT
    assert report.stats["crashes"] == 0
    assert report.stats["quarantined"] == 0
    assert report.incomplete() == []
    # Every shard journaled a done record.
    for i in range(len(_SHARDS)):
        last = replay_journal(shard_journal_path(tmp_path, i)).last
        assert last is not None and last.done


def test_run_shards_kill_and_recover_bit_identical(tmp_path):
    plan = FaultPlan(
        faults=(
            Fault(kind="kill", shard_id=0, rank=57),
            Fault(kind="kill", shard_id=2, rank=203),
        )
    )
    report = _run(tmp_path, fault_plan=plan)
    assert report.results() == _EXPECT
    assert report.stats["crashes"] == 2
    assert report.stats["retries"] == 2
    # The retries resumed from journaled progress, not from scratch.
    outcome = report.outcomes[0]
    assert outcome.attempts == 1 and outcome.resumed


def test_run_shards_dropped_and_corrupt_checkpoints(tmp_path):
    # Shard 1 loses its first checkpoint write, gets its second write
    # corrupted on disk, and is then killed: recovery must fall back to
    # whatever intact prefix remains and still converge exactly.
    plan = FaultPlan(
        faults=(
            Fault(kind="drop_checkpoint", shard_id=1, checkpoint_index=0),
            Fault(kind="corrupt_checkpoint", shard_id=1, checkpoint_index=1),
            Fault(kind="kill", shard_id=1, rank=140),
        )
    )
    report = _run(tmp_path, fault_plan=plan)
    assert report.results() == _EXPECT
    assert report.stats["crashes"] == 1


def test_run_shards_stall_detected_and_reclaimed(tmp_path):
    plan = FaultPlan(
        faults=(Fault(kind="stall", shard_id=3, rank=350),),
        stall_seconds=60.0,
    )
    report = _run(tmp_path, fault_plan=plan, heartbeat_timeout=1.0)
    assert report.results() == _EXPECT
    assert report.stats["stalls"] == 1
    assert report.stats["retries"] == 1


def test_run_shards_worker_exception_retries(tmp_path):
    payloads = list(_SHARDS)
    payloads[2] = (200, 300, 2)  # raises on attempts 0 and 1
    report = _run(tmp_path, payloads=payloads)
    assert report.results() == _EXPECT
    assert report.stats["worker_errors"] == 2
    assert report.outcomes[2].attempts == 2


def _sysexit_shard(payload, ctx=None):
    """Like ``_sum_shard`` but poisoned attempts raise SystemExit."""
    lo, hi, poison_attempts = payload
    if ctx is not None and ctx.attempt < poison_attempts:
        raise SystemExit(3)
    return _sum_shard((lo, hi, 0), ctx)


def test_run_shards_systemexit_reported_as_error_event(tmp_path):
    # Regression: the worker loop used to catch only Exception, so a
    # SystemExit inside a shard fn killed the worker with no "error"
    # event and the shard waited out a full heartbeat-timeout
    # reclamation. It must surface as a fast error-event retry instead.
    payloads = list(_SHARDS)
    payloads[1] = (100, 200, 2)  # SystemExit on attempts 0 and 1
    report = _run(
        tmp_path,
        payloads=payloads,
        shard_fn=_sysexit_shard,
        heartbeat_timeout=600.0,  # reclamation would blow the timeout
        timeout=60.0,
    )
    assert report.results() == _EXPECT
    assert report.stats["worker_errors"] == 2
    assert report.stats["crashes"] == 0
    assert report.stats["stalls"] == 0
    assert report.outcomes[1].attempts == 2


def test_run_shards_quarantines_poison_shard(tmp_path):
    plan = FaultPlan(
        faults=tuple(
            Fault(kind="kill", shard_id=1, rank=160, attempt=a)
            for a in range(6)
        )
    )
    report = _run(tmp_path, fault_plan=plan, max_retries=2)
    assert report.stats["quarantined"] == 1
    outcome = report.outcomes[1]
    assert outcome.quarantined and outcome.result is None
    # The quarantined shard still contributes its journaled prefix, and
    # the report names exactly the uncovered rank range.
    assert outcome.last_record is not None
    assert outcome.last_record.next_rank <= 160
    assert report.incomplete() == [(1, outcome.last_record.next_rank, 200)]
    # The healthy shards are unaffected.
    assert [r for r in report.results()] == [
        e for i, e in enumerate(_EXPECT) if i != 1
    ]


def test_run_shards_resume_skips_done_shards(tmp_path):
    _run(tmp_path)
    report = _run(
        tmp_path, resume=True, result_from_record=_sum_result_from_record
    )
    assert report.results() == _EXPECT
    assert report.stats["shards_skipped_done"] == len(_SHARDS)
    assert report.stats["workers_spawned"] == 0  # nothing left to run


def test_run_shards_resume_done_requires_rebuild_hook(tmp_path):
    _run(tmp_path)
    with pytest.raises(CheckpointError):
        _run(tmp_path, resume=True)


def test_run_shards_timeout_keeps_journals(tmp_path):
    plan = FaultPlan(
        faults=(Fault(kind="stall", shard_id=0, rank=50),),
        stall_seconds=60.0,
    )
    with pytest.raises(CheckpointError):
        _run(
            tmp_path,
            fault_plan=plan,
            workers=1,
            heartbeat_timeout=30.0,
            timeout=1.0,
        )
    # The interrupted run's journals replay cleanly for a later resume.
    report = _run(
        tmp_path, resume=True, result_from_record=_sum_result_from_record
    )
    assert report.results() == _EXPECT


# ----------------------------------------------------------------------
# Checkpointed census scans: bit-identity under injected faults
# ----------------------------------------------------------------------
_RUNTIME_OPTS = {
    "checkpoint_interval": 16,
    "backoff_base": 0.01,
    "timeout": 300.0,
}


def _unit_ref(game, version, **kwargs):
    return census_scan(game, version, collect_equilibria=True, **kwargs)


def test_census_fault_matrix_bit_identical(tmp_path):
    game = BoundedBudgetGame([1] * 5)
    ref = _unit_ref(game, "max")
    plan = FaultPlan(
        faults=(
            Fault(kind="kill", shard_id=0, rank=70),
            Fault(kind="drop_checkpoint", shard_id=1, checkpoint_index=1),
            Fault(kind="kill", shard_id=1, rank=400),
            Fault(kind="corrupt_checkpoint", shard_id=2, checkpoint_index=0),
            Fault(kind="kill", shard_id=2, rank=600),
            Fault(kind="stall", shard_id=3, rank=900),
        ),
        stall_seconds=60.0,
    )
    res = census_scan(
        game,
        "max",
        workers=2,
        collect_equilibria=True,
        checkpoint_dir=tmp_path,
        shard_count=4,
        fault_plan=plan,
        runtime_opts=dict(_RUNTIME_OPTS, heartbeat_timeout=1.5),
    )
    assert res.report == ref.report
    assert res.equilibria == ref.equilibria
    assert res.incomplete is None
    stats = en.LAST_CENSUS_RUNTIME_STATS
    assert stats["crashes"] == 3 and stats["stalls"] == 1
    assert stats["covered"] == 1024 and stats["missing"] == []


def test_census_random_fault_plan_with_symmetry(tmp_path):
    game = BoundedBudgetGame([1] * 5)
    ref = _unit_ref(game, "sum", symmetry=True)
    plan = FaultPlan.random(seed=7, shards=contiguous_shards(1024, 4))
    res = census_scan(
        game,
        "sum",
        workers=2,
        symmetry=True,
        collect_equilibria=True,
        checkpoint_dir=tmp_path,
        shard_count=4,
        fault_plan=plan,
        runtime_opts=dict(_RUNTIME_OPTS, heartbeat_timeout=1.5),
    )
    assert res.report == ref.report
    assert res.equilibria == ref.equilibria


def test_weighted_census_random_fault_plan(tmp_path):
    game = BoundedBudgetGame([1, 1, 1, 1])
    weights = (5, 1, 1, 1)
    ref, _ = weighted_census_scan(game, weights)
    from repro.core.enumeration import profile_space_size

    plan = FaultPlan.random(
        seed=11, shards=contiguous_shards(profile_space_size(game), 4)
    )
    res, _ = weighted_census_scan(
        game,
        weights,
        workers=2,
        checkpoint_dir=tmp_path,
        shard_count=4,
        fault_plan=plan,
        runtime_opts=dict(_RUNTIME_OPTS, heartbeat_timeout=1.5),
    )
    assert res == ref


def test_census_quarantine_degrades_then_resume_heals(tmp_path):
    game = BoundedBudgetGame([1] * 5)
    ref = _unit_ref(game, "max")
    poison = FaultPlan(
        faults=tuple(
            Fault(kind="kill", shard_id=0, rank=96, attempt=a)
            for a in range(6)
        )
    )
    partial = census_scan(
        game,
        "max",
        workers=2,
        collect_equilibria=True,
        checkpoint_dir=tmp_path,
        shard_count=4,
        fault_plan=poison,
        runtime_opts=dict(_RUNTIME_OPTS, max_retries=2),
    )
    # Degraded, not wedged: an explicit manifest of the uncovered ranks.
    assert partial.incomplete is not None
    assert partial.incomplete.total == 1024
    assert partial.incomplete.covered < 1024
    (missing,) = partial.incomplete.missing
    assert missing[0] == 0 and missing[2] == 256
    assert en.LAST_CENSUS_RUNTIME_STATS["quarantined"] == 1
    # Resuming without the poison heals to the exact reference.
    healed = census_scan(
        game,
        "max",
        workers=2,
        collect_equilibria=True,
        checkpoint_dir=tmp_path,
        resume=True,
        runtime_opts=_RUNTIME_OPTS,
    )
    assert healed.report == ref.report
    assert healed.equilibria == ref.equilibria
    assert healed.incomplete is None
    assert en.LAST_CENSUS_RUNTIME_STATS["shards_resumed"] == 1
    assert en.LAST_CENSUS_RUNTIME_STATS["shards_skipped_done"] == 3


def test_census_resume_manifest_mismatch_rejected(tmp_path):
    game = BoundedBudgetGame([1, 1, 1, 1])
    census_scan(
        game, "max", workers=2, checkpoint_dir=tmp_path, shard_count=2
    )
    with pytest.raises(CheckpointError):
        census_scan(
            game,
            "max",
            workers=2,
            collect_equilibria=True,  # differs from the journaled run
            checkpoint_dir=tmp_path,
            resume=True,
        )


def test_census_checkpoint_kwargs_validation(tmp_path):
    game = BoundedBudgetGame([1, 1, 1])
    with pytest.raises(GameError):
        census_scan(game, "max", resume=True)
    with pytest.raises(GameError):
        census_scan(game, "max", fault_plan=FaultPlan())
    with pytest.raises(GameError):
        census_scan(game, "max", shard_count=2)
    with pytest.raises(GameError):
        weighted_census_scan(
            game, (1, 1, 1), checkpoint_dir=tmp_path, incremental=False
        )


def test_census_cross_process_kill_and_resume(tmp_path):
    """SIGKILL a whole checkpointed run mid-flight; resume it in a
    fresh process and recover the bit-identical census."""
    child_code = textwrap.dedent(
        f"""
        from repro.core import BoundedBudgetGame, census_scan
        from repro.parallel import Fault, FaultPlan
        plan = FaultPlan(faults=tuple(
            Fault(kind="stall", shard_id=s, rank=r, attempt=a)
            for s, r in ((0, 120), (2, 580)) for a in range(4)
        ), stall_seconds=600.0)
        census_scan(BoundedBudgetGame([1]*5), "max", workers=2,
                    checkpoint_dir={str(tmp_path)!r}, shard_count=4,
                    fault_plan=plan, collect_equilibria=True,
                    runtime_opts={{"checkpoint_interval": 16,
                                   "heartbeat_timeout": 600.0}})
        """
    )
    # start_new_session + killpg takes the stalled workers down with the
    # parent — a clean SIGKILL of the entire process tree.
    proc = subprocess.Popen(
        [sys.executable, "-c", child_code],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,
    )
    try:
        time.sleep(7)
    finally:
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait()
    assert proc.returncode == -signal.SIGKILL
    assert os.path.exists(os.path.join(tmp_path, "MANIFEST.json"))

    game = BoundedBudgetGame([1] * 5)
    ref = _unit_ref(game, "max")
    res = census_scan(
        game,
        "max",
        workers=2,
        collect_equilibria=True,
        checkpoint_dir=tmp_path,
        resume=True,
        runtime_opts=_RUNTIME_OPTS,
    )
    assert res.report == ref.report
    assert res.equilibria == ref.equilibria
    assert res.incomplete is None


# ----------------------------------------------------------------------
# Orphan segment sweep (regression: SIGKILLed owners leaked segments)
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="no scannable shm directory"
)
def test_sweep_reaps_dead_owner_segments_only():
    # A real dead pid: spawn a trivial child and let it exit.
    proc = subprocess.Popen([sys.executable, "-c", ""])
    proc.wait()
    leaked = f"/dev/shm/repro_pool_{proc.pid}_0"
    mine = f"/dev/shm/repro_pool_{os.getpid()}_999999"
    foreign = "/dev/shm/repro_other_1_0"
    for path in (leaked, mine, foreign):
        with open(path, "wb") as fh:
            fh.write(b"\0" * 16)
    try:
        removed = sweep_orphan_segments()
        assert removed >= 1
        assert not os.path.exists(leaked)  # dead owner: reaped
        assert os.path.exists(mine)  # own live segment: untouched
        assert os.path.exists(foreign)  # not a pool segment: ignored
    finally:
        for path in (leaked, mine, foreign):
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass


@pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="no scannable shm directory"
)
def test_census_scan_start_sweeps_leaked_segments(tmp_path):
    proc = subprocess.Popen([sys.executable, "-c", ""])
    proc.wait()
    leaked = f"/dev/shm/repro_pool_{proc.pid}_3"
    with open(leaked, "wb") as fh:
        fh.write(b"\0" * 16)
    try:
        census_scan(BoundedBudgetGame([1, 1, 1, 1]), "max", workers=2)
        assert not os.path.exists(leaked)
    finally:
        try:
            os.unlink(leaked)
        except FileNotFoundError:
            pass


# ----------------------------------------------------------------------
# Shutdown event drain (regression): events queued at teardown apply
# ----------------------------------------------------------------------
def _slow_finish_shard(payload, ctx=None):
    """Heartbeats, then deliberately outlives the runtime deadline."""
    lo, hi, _ = payload
    if ctx is not None:
        ctx.tick(lo)
    time.sleep(0.6)
    total = sum(r * r for r in range(lo, hi))
    if ctx is not None:
        ctx.checkpoint(
            lo=lo, hi=hi, next_rank=hi, counters={"total": total}, done=True
        )
    return {"lo": lo, "total": total}


def test_drain_pending_events_applies_backlog():
    from queue import Empty

    from repro.parallel.runtime import _drain_pending_events

    class _FakeQueue:
        def __init__(self, items):
            self.items = list(items)

        def get_nowait(self):
            if not self.items:
                raise Empty
            return self.items.pop(0)

    seen = []
    q = _FakeQueue([("hb", 0, 0, None), ("done", 0, 1, {"total": 1})])
    assert _drain_pending_events(q, seen.append) == 2
    assert seen == [("hb", 0, 0, None), ("done", 0, 1, {"total": 1})]
    assert _drain_pending_events(q, seen.append) == 0


def test_shutdown_drain_applies_late_done(tmp_path):
    # Regression: a "done" event emitted while the scheduler was tearing
    # down (here: forced by a deadline shorter than the shard) was
    # silently dropped — the run raised timeout despite the shard having
    # completed and journaled. The shutdown drain must apply it and
    # return a complete report instead.
    report = _run(
        tmp_path,
        payloads=[(0, 50, 0)],
        shard_fn=_slow_finish_shard,
        workers=1,
        timeout=0.25,
    )
    assert report.results() == [
        {"lo": 0, "total": sum(r * r for r in range(0, 50))}
    ]
    assert report.incomplete() == []
