"""Tests for improvement graphs, FIP checking, and isomorphism counting."""

from __future__ import annotations

import pytest

from repro.core import (
    BoundedBudgetGame,
    are_isomorphic,
    check_finite_improvement,
    count_isomorphism_classes,
    enumerate_equilibria,
    find_improvement_cycle,
    improvement_graph,
    isomorphism_invariant,
)
from repro.errors import GameError
from repro.graphs import OwnedDigraph, cycle_realization, path_realization


# ----------------------------------------------------------------------
# Improvement graphs / FIP
# ----------------------------------------------------------------------
def test_improvement_graph_shape():
    game = BoundedBudgetGame([1, 1, 1])
    g = improvement_graph(game, "sum", kind="better")
    assert g.num_states == 8
    # Sinks are exactly the enumerated equilibria.
    sinks = set(g.sinks())
    eqs = {x.profile_key() for x in enumerate_equilibria(game, "sum")}
    assert sinks == eqs


def test_improvement_edges_are_single_player_moves():
    game = BoundedBudgetGame([1, 1, 1])
    g = improvement_graph(game, "max", kind="better")
    for src, outs in g.edges.items():
        for dst in outs:
            diff = [i for i in range(3) if src[i] != dst[i]]
            assert len(diff) == 1


def test_best_subset_of_better():
    game = BoundedBudgetGame([1, 1, 1, 1])
    better = improvement_graph(game, "sum", kind="better")
    best = improvement_graph(game, "sum", kind="best")
    assert best.num_states == better.num_states
    for key in better.edges:
        assert set(best.edges[key]) <= set(better.edges[key])
    assert set(best.sinks()) == set(better.sinks())


def test_invalid_kind():
    game = BoundedBudgetGame([1, 1])
    with pytest.raises(GameError):
        improvement_graph(game, "sum", kind="steepest")


@pytest.mark.parametrize("version", ["sum", "max"])
@pytest.mark.parametrize("kind", ["better", "best"])
def test_fip_holds_on_tiny_unit_games(version, kind):
    # Section 8 open problem, answered exhaustively at n = 3, 4: every
    # improvement path terminates — no Laoutaris-style loop exists.
    for n in (3, 4):
        game = BoundedBudgetGame([1] * n)
        report = check_finite_improvement(game, version, kind=kind)
        assert report.has_fip, (n, version, kind, report.cycle)
        assert report.num_sinks >= 1
        assert find_improvement_cycle(game, version, kind=kind) is None


def test_fip_on_mixed_budgets():
    game = BoundedBudgetGame([2, 1, 0, 1])
    for version in ("sum", "max"):
        report = check_finite_improvement(game, version)
        assert report.has_fip
        assert report.num_states == 27
        assert report.num_sinks == len(enumerate_equilibria(game, version))


# ----------------------------------------------------------------------
# Isomorphism
# ----------------------------------------------------------------------
def test_isomorphic_relabelings():
    a = OwnedDigraph.from_arcs(3, [(0, 1), (1, 2)])
    b = OwnedDigraph.from_arcs(3, [(2, 0), (0, 1)])  # relabeled path
    assert are_isomorphic(a, b)
    assert isomorphism_invariant(a) == isomorphism_invariant(b)


def test_non_isomorphic_by_ownership():
    # Same undirected shape, different ownership pattern.
    a = OwnedDigraph.from_arcs(3, [(0, 1), (1, 2)])  # chain ownership
    c = OwnedDigraph.from_arcs(3, [(1, 0), (1, 2)])  # middle owns both
    assert not are_isomorphic(a, c)


def test_non_isomorphic_different_sizes_and_arcs():
    a = path_realization(3)
    b = path_realization(4)
    assert not are_isomorphic(a, b)
    c = OwnedDigraph(3)
    assert not are_isomorphic(a, c)


def test_isomorphism_cap():
    big = OwnedDigraph(12)
    with pytest.raises(GameError):
        are_isomorphic(big, big.copy())


def test_count_classes_cycles():
    # All 5-cycles are isomorphic regardless of starting label.
    graphs = []
    for shift in range(3):
        g = OwnedDigraph(5)
        for i in range(5):
            g.add_arc((i + shift) % 5, (i + 1 + shift) % 5)
        graphs.append(g)
    assert count_isomorphism_classes(graphs) == 1


def test_count_classes_equilibrium_census():
    # The 30 labeled SUM equilibria of (1,1,1,1)-BG collapse to a small
    # number of structural shapes.
    game = BoundedBudgetGame([1, 1, 1, 1])
    eqs = enumerate_equilibria(game, "sum")
    classes = count_isomorphism_classes(eqs)
    assert 1 <= classes < len(eqs)
    # Isomorphism preserves diameters within each class (spot check).
    from repro.graphs import diameter

    for g in eqs[:5]:
        for h in eqs[:5]:
            if are_isomorphic(g, h):
                assert diameter(g) == diameter(h)
