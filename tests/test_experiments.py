"""Tests for the experiment harness (small parameterisations)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BoundedBudgetGame
from repro.errors import ExperimentError
from repro.experiments import (
    FIGURE1_BUDGETS,
    exact_is_feasible,
    figure1_experiment,
    figure2_experiment,
    figure3_experiment,
    list_experiments,
    positive_max_experiment,
    render_arcs,
    render_spider,
    run_experiment,
    stabilize,
    trees_max_experiment,
    trees_sum_experiment,
    try_certify,
    unit_budgets_experiment,
)
from repro.experiments.runner import REGISTRY
from repro.graphs import star_realization, unit_budgets


# ----------------------------------------------------------------------
# common helpers
# ----------------------------------------------------------------------
def test_exact_is_feasible():
    assert exact_is_feasible(BoundedBudgetGame([1, 1, 1]))
    big = BoundedBudgetGame([20] * 50)
    assert not exact_is_feasible(big, cap=1000)


def test_stabilize_exact_path():
    game = BoundedBudgetGame(unit_budgets(8))
    out = stabilize(game, game.random_realization(seed=0), "sum", seed=0)
    assert out.converged
    assert out.method == "exact"
    from repro.core import is_equilibrium

    assert is_equilibrium(out.graph, "sum")


def test_stabilize_heuristic_path():
    # Force the heuristic branch with a tiny exact cap.
    game = BoundedBudgetGame([2, 2, 2, 1, 1, 1, 1, 0])
    out = stabilize(
        game,
        game.random_realization(seed=1, connected=True),
        "sum",
        seed=1,
        exact_cap=1,
    )
    assert out.method == "swap"
    assert out.converged


def test_try_certify_methods():
    g = star_realization(6, 0, center_owns=True)
    method, cert = try_certify(g, "sum")
    assert method == "exact"
    assert cert.is_equilibrium
    # A player with 2-of-6 budget has C(6, 2) = 15 > 1 candidate subsets,
    # so a cap of 1 forces the swap path.
    from repro.constructions import binary_tree_equilibrium

    bt = binary_tree_equilibrium(2).graph
    method2, cert2 = try_certify(bt, "sum", exact_cap=1)
    assert method2 == "swap"
    assert cert2.is_equilibrium


# ----------------------------------------------------------------------
# Table 1 runners (small parameters to keep CI fast)
# ----------------------------------------------------------------------
def test_trees_max_small():
    rep = trees_max_experiment(ks=(2, 3))
    assert rep.fit is not None and rep.fit.family == "linear"
    assert all("True" in str(r["certified"]) for r in rep.rows)
    assert [r["diameter"] for r in rep.rows] == [4, 6]
    assert rep.format()  # renders


def test_trees_sum_small():
    rep = trees_sum_experiment(ns=(15,), replications=2, depths=(2, 3))
    assert rep.fit is not None and rep.fit.family == "log"
    bt_rows = [r for r in rep.rows if r["source"] == "binary-tree"]
    assert all(r["within_bound"] for r in bt_rows)
    dyn_rows = [r for r in rep.rows if r["source"] == "dynamics"]
    assert all(r["within_bound"] for r in dyn_rows)


def test_unit_budgets_small():
    rep = unit_budgets_experiment(ns=(6, 10), replications=2)
    assert all(r["structure_ok"] for r in rep.rows)
    sum_rows = [r for r in rep.rows if r["version"] == "sum"]
    max_rows = [r for r in rep.rows if r["version"] == "max"]
    assert all(r["worst_diameter"] < 5 for r in sum_rows)
    assert all(r["worst_diameter"] < 8 for r in max_rows)


def test_positive_max_small():
    rep = positive_max_experiment(tk_pairs=((4, 2),))
    assert rep.rows[0]["diameter"] == 2
    assert "True" in rep.rows[0]["certified"]


# ----------------------------------------------------------------------
# Figures
# ----------------------------------------------------------------------
def test_figure1():
    rep = figure1_experiment()
    assert len(rep.rows) == 2
    for row in rep.rows:
        assert row["is_equilibrium"]
        assert row["diameter"] <= 4
        assert row["n"] == 22
        assert row["case"] == 2


def test_figure1_budgets_constant():
    assert len(FIGURE1_BUDGETS) == 22
    assert sum(FIGURE1_BUDGETS) == 27
    assert FIGURE1_BUDGETS.count(0) == 16


def test_figure2():
    rep = figure2_experiment(ks=(2,))
    assert rep.rows[0]["is_equilibrium"]
    assert rep.rows[0]["diameter"] == 4


def test_figure3():
    rep = figure3_experiment(depth=3)
    sizes = [r["a(i)"] for r in rep.rows]
    assert sum(sizes) == 15
    assert "inequality holds: True" in rep.notes[0]


def test_renderers():
    g = star_realization(4, 0, center_owns=True)
    text = render_arcs(g)
    assert "v1->v2" in text
    pic = render_spider(2)
    assert "w" in pic and "x1" in pic


# ----------------------------------------------------------------------
# Registry / CLI
# ----------------------------------------------------------------------
def test_registry_covers_all_artifacts():
    keys = set(REGISTRY)
    # Every Table 1 cell and every figure is present.
    assert {"T1-MAX-trees", "T1-SUM-trees", "T1-unit", "T1-MAX-positive",
            "T1-SUM-general", "FIG-1", "FIG-2", "FIG-3"} <= keys
    assert len(list_experiments()) == len(REGISTRY)


def test_run_experiment_unknown():
    with pytest.raises(ExperimentError):
        run_experiment("T9-UNKNOWN")


def test_run_experiment_dispatch():
    rep = run_experiment("FIG-2")
    assert rep.experiment_id == "FIG-2"


def test_cli_list(capsys):
    from repro.cli import main

    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "T1-MAX-trees" in out
    assert "FIG-3" in out


def test_cli_run(capsys):
    from repro.cli import main

    assert main(["run", "FIG-2"]) == 0
    out = capsys.readouterr().out
    assert "FIG-2" in out
    assert "elapsed" in out


def test_cli_run_unknown(capsys):
    from repro.cli import main

    assert main(["run", "NOPE"]) == 1
    assert "failed" in capsys.readouterr().err


def test_cli_run_failure_surfaces_traceback(capsys):
    # Regression: batch runs printed only str(exc), masking which layer
    # raised — the full traceback must reach stderr.
    from repro.cli import main

    assert main(["run", "NOPE"]) == 1
    err = capsys.readouterr().err
    assert "Traceback (most recent call last)" in err
    assert "ExperimentError" in err
    assert "!! NOPE failed" in err


def test_cli_extended_flag_warns_deprecated(capsys):
    from repro.cli import main

    with pytest.warns(DeprecationWarning, match="--extended is deprecated"):
        main(["run", "FIG-2", "--extended"])
    assert "FIG-2" in capsys.readouterr().out


def test_cli_run_without_extended_does_not_warn(capsys, recwarn):
    import warnings

    from repro.cli import main

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        assert main(["run", "FIG-2"]) == 0


def test_cli_resume_without_checkpoint_dir_exits_2(capsys):
    from repro.cli import main

    assert main(["run", "FIG-2", "--resume"]) == 2
    err = capsys.readouterr().err
    assert "--resume requires --checkpoint-dir" in err


def test_cli_pool_gc_missing_dir_exits_1(tmp_path, capsys):
    from repro.cli import main

    missing = str(tmp_path / "no-such-store")
    assert main(["pool", "gc", "--dir", missing]) == 1
    assert "!! pool gc failed" in capsys.readouterr().err
    # The failed gc must not have conjured the directory into existence.
    assert not (tmp_path / "no-such-store").exists()


def test_cli_pool_gc_non_store_path_exits_1(tmp_path, capsys):
    from repro.cli import main

    plain = tmp_path / "plainfile"
    plain.write_text("not a store")
    assert main(["pool", "gc", "--dir", str(plain)]) == 1
    assert "!! pool gc failed" in capsys.readouterr().err


def test_cli_batch_run_keeps_going_after_middle_failure(capsys):
    # `run a b c` with a failing middle id: the batch finishes (both
    # healthy experiments print reports) and the exit code is 1.
    from repro.cli import main

    assert main(["run", "FIG-2", "NOPE", "FIG-3"]) == 1
    captured = capsys.readouterr()
    assert "FIG-2" in captured.out
    assert "FIG-3" in captured.out
    assert "!! NOPE failed" in captured.err
