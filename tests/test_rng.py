"""Tests for the deterministic RNG utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import (
    as_generator,
    derive_seed,
    random_partition,
    random_subset,
    seed_sequence_for_task,
    spawn_generators,
)


def test_as_generator_determinism():
    a = as_generator(7).random(5)
    b = as_generator(7).random(5)
    assert np.array_equal(a, b)
    c = as_generator(8).random(5)
    assert not np.array_equal(a, c)


def test_as_generator_passthrough():
    g = np.random.default_rng(0)
    assert as_generator(g) is g


def test_as_generator_none_is_nondeterministic():
    # Two fresh generators agreeing on 8 doubles is astronomically unlikely.
    a = as_generator(None).random(8)
    b = as_generator(None).random(8)
    assert not np.array_equal(a, b)


def test_derive_seed_stable_and_distinct():
    s1 = derive_seed(5, 0)
    s2 = derive_seed(5, 0)
    s3 = derive_seed(5, 1)
    assert s1 == s2
    assert s1 != s3
    assert 0 <= s1 < 2**63


def test_seed_sequence_for_task_independent_streams():
    a = np.random.default_rng(seed_sequence_for_task(1, 0)).random(4)
    b = np.random.default_rng(seed_sequence_for_task(1, 1)).random(4)
    assert not np.array_equal(a, b)


def test_spawn_generators():
    gens = spawn_generators(3, 4)
    assert len(gens) == 4
    values = [g.random() for g in gens]
    assert len(set(values)) == 4
    # Deterministic given the same seed.
    again = [g.random() for g in spawn_generators(3, 4)]
    assert values == again
    with pytest.raises(ValueError):
        spawn_generators(3, -1)


def test_random_subset():
    rng = as_generator(0)
    s = random_subset(rng, np.arange(10), 4)
    assert s.size == 4
    assert len(set(s.tolist())) == 4
    assert (np.diff(s) > 0).all()
    with pytest.raises(ValueError):
        random_subset(rng, np.arange(3), 5)


def test_random_partition_sums():
    rng = as_generator(1)
    for total, parts in ((10, 3), (0, 4), (7, 1), (5, 5)):
        p = random_partition(rng, total, parts)
        assert p.size == parts
        assert int(p.sum()) == total
        assert (p >= 0).all()
    with pytest.raises(ValueError):
        random_partition(rng, 5, 0)
    with pytest.raises(ValueError):
        random_partition(rng, -1, 2)
