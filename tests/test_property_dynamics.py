"""Property-based tests for best-response dynamics."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BoundedBudgetGame,
    all_costs,
    best_response_dynamics,
    is_equilibrium,
)
from repro.graphs import unit_budgets


@given(
    n=st.integers(min_value=3, max_value=9),
    seed=st.integers(min_value=0, max_value=2**31),
    version=st.sampled_from(["sum", "max"]),
)
@settings(max_examples=25, deadline=None)
def test_unit_dynamics_always_converges_to_equilibrium(n, seed, version):
    """On tiny unit-budget games, exact dynamics converges from every
    sampled start and the fixed point is a certified equilibrium."""
    game = BoundedBudgetGame(unit_budgets(n))
    res = best_response_dynamics(
        game, game.random_realization(seed=seed), version, max_rounds=120, seed=seed
    )
    assert res.converged
    assert not res.cycled
    assert is_equilibrium(res.graph, version)


@given(
    n=st.integers(min_value=3, max_value=8),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=20, deadline=None)
def test_moving_player_cost_strictly_decreases(n, seed):
    """Each executed move lowers the mover's cost by exactly its gain."""
    game = BoundedBudgetGame(unit_budgets(n))
    res = best_response_dynamics(
        game, game.random_realization(seed=seed), "sum", max_rounds=120, seed=seed
    )
    for move in res.moves:
        assert move.gain > 0
        assert len(move.new_strategy) == len(move.old_strategy) == 1


@given(
    budgets=st.lists(st.integers(min_value=0, max_value=2), min_size=3, max_size=7),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=20, deadline=None)
def test_total_cost_never_increases_on_convergence(budgets, seed):
    """Converged dynamics never leaves the network socially worse in SUM
    total cost than the *final* round's snapshot (sanity of the trace) —
    and the final graph remains a valid realization."""
    game = BoundedBudgetGame(budgets)
    start = game.random_realization(seed=seed)
    res = best_response_dynamics(game, start, "sum", max_rounds=120, seed=seed)
    game.validate_realization(res.graph)
    if res.converged and res.social_costs:
        assert res.social_costs[-1] <= max(res.social_costs)
