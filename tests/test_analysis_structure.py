"""Tests for the Section 4 unit-budget structure audits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    MAX_DIAMETER_BOUND,
    SUM_DIAMETER_BOUND,
    check_unit_structure,
)
from repro.core import BoundedBudgetGame, best_response_dynamics
from repro.errors import GraphError
from repro.graphs import OwnedDigraph, cycle_realization, path_realization, unit_budgets


def test_cycle_report():
    rep = check_unit_structure(cycle_realization(5))
    assert rep.is_unicyclic
    assert rep.cycle_length == 5
    assert rep.max_distance_to_cycle == 0
    assert rep.diameter_value == 2
    assert rep.satisfies("sum")
    assert rep.satisfies("max")


def test_long_cycle_violates_both():
    rep = check_unit_structure(cycle_realization(20))
    assert rep.is_unicyclic
    assert not rep.satisfies("sum")
    assert not rep.satisfies("max")


def test_cycle_of_6_ok_for_max_only():
    rep = check_unit_structure(cycle_realization(6))
    assert rep.cycle_length == 6
    assert not rep.satisfies("sum")  # cycle > 5
    assert rep.satisfies("max")


def test_requires_unit_budgets():
    with pytest.raises(GraphError):
        check_unit_structure(path_realization(4))


def test_disconnected_unit_graph():
    g = OwnedDigraph(4)
    g.add_arc(0, 1)
    g.add_arc(1, 0)
    g.add_arc(2, 3)
    g.add_arc(3, 2)
    rep = check_unit_structure(g)
    assert not rep.is_unicyclic
    assert not rep.satisfies("sum")
    assert rep.cycle == ()


def test_deep_attachment_violates():
    # rho-shape with a long tail: distance-to-cycle > 2.
    g = OwnedDigraph(7)
    g.add_arc(0, 1)
    g.add_arc(1, 2)
    g.add_arc(2, 0)
    g.add_arc(3, 0)
    g.add_arc(4, 3)
    g.add_arc(5, 4)
    g.add_arc(6, 5)
    rep = check_unit_structure(g)
    assert rep.is_unicyclic
    assert rep.max_distance_to_cycle == 4
    assert not rep.satisfies("sum")
    assert not rep.satisfies("max")


@pytest.mark.parametrize("version,bound", [("sum", SUM_DIAMETER_BOUND), ("max", MAX_DIAMETER_BOUND)])
def test_dynamics_equilibria_satisfy_theorems(version, bound):
    # Theorems 4.1 / 4.2 audited on equilibria reached by exact dynamics.
    for seed in range(6):
        n = 10 + 3 * seed
        game = BoundedBudgetGame(unit_budgets(n))
        res = best_response_dynamics(
            game, game.random_realization(seed=seed), version, max_rounds=150
        )
        assert res.converged, (version, seed)
        rep = check_unit_structure(res.graph)
        assert rep.satisfies(version), (version, seed, rep)
        assert rep.diameter_value < bound
