"""Property-based tests: the paper's constructions hold at random sizes."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constructions import (
    binary_tree_equilibrium,
    construct_equilibrium,
    spider_equilibrium,
)
from repro.core import BoundedBudgetGame, is_equilibrium
from repro.graphs import cinf, diameter, is_connected, is_tree


@given(st.lists(st.integers(min_value=0, max_value=6), min_size=2, max_size=8))
@settings(max_examples=40, deadline=None)
def test_theorem_2_3_any_budget_vector(budgets):
    """Theorem 2.3: the construction is always a valid equilibrium."""
    n = len(budgets)
    budgets = [min(b, n - 1) for b in budgets]
    ec = construct_equilibrium(budgets)
    game = BoundedBudgetGame(budgets)
    game.validate_realization(ec.graph)
    # Price-of-stability structure: connected with O(1) diameter iff
    # sigma >= n - 1.
    if sum(budgets) >= n - 1:
        assert is_connected(ec.graph)
        assert diameter(ec.graph) <= 4
    else:
        assert not is_connected(ec.graph)
        assert diameter(ec.graph) == cinf(n)
    assert is_equilibrium(ec.graph, "sum")
    assert is_equilibrium(ec.graph, "max")


@given(st.integers(min_value=1, max_value=6))
@settings(max_examples=6, deadline=None)
def test_spider_equilibrium_every_k(k):
    """Theorem 3.2 holds for every leg length."""
    inst = spider_equilibrium(k)
    assert is_tree(inst.graph)
    assert diameter(inst.graph) == 2 * k
    assert is_equilibrium(inst.graph, "max")


@given(st.integers(min_value=1, max_value=4))
@settings(max_examples=4, deadline=None)
def test_binary_tree_equilibrium_every_depth(depth):
    """Theorem 3.4 holds for every depth."""
    inst = binary_tree_equilibrium(depth)
    assert is_tree(inst.graph)
    assert diameter(inst.graph) == 2 * depth
    assert is_equilibrium(inst.graph, "sum")
