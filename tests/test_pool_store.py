"""Tests for the persistent on-disk mmap pool tier.

Four families:

* **Format & integrity** — publish/attach round-trips, digest
  canonicality, and the corruption contract: truncation, byte flips,
  clobbered magic and foreign digests all degrade to a quarantined miss
  (rebuild-and-republish), never a wrong matrix.
* **Two-level model** — a hypothesis interleaving test driving random
  publish / fetch-promote / evict / gc sequences against an in-memory
  model of both tiers (shm LRU registry + disk used-clock byte-budget
  LRU).
* **Cross-process survival** — matrices published by a SIGKILLed
  process attach verified in a fresh one with zero rebuilds, including
  the census ``pool_dir=`` warm-start path end to end.
* **Maintenance** — ``gc`` reaps dead writers' temp files, quarantines
  corrupt files, rebuilds the index, enforces the budget; the
  ``repro-bbncg pool gc`` CLI fronts it.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import textwrap
import time
from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BoundedBudgetGame,
    MatrixPool,
    PoolStore,
    census_graph_digest,
    census_scan,
    store_digest,
)
from repro.core import enumeration as en
from repro.core.pool_store import INDEX_NAME, attach_store_file
from repro.errors import PoolError
from repro.graphs.digraph import OwnedDigraph


def _bundle(i: int) -> "dict[str, np.ndarray]":
    return {
        "D": (np.arange(16, dtype=np.int64) * (i + 3)).reshape(4, 4),
        "inf": np.asarray([99 + i], dtype=np.int64),
    }


# ----------------------------------------------------------------------
# Format & integrity
# ----------------------------------------------------------------------
def test_publish_attach_round_trip(tmp_path):
    store = PoolStore(tmp_path)
    digest = store_digest("t", 1)
    handle = store.publish(digest, _bundle(1))
    assert handle.digest == digest
    views = store.attach(digest)
    assert views is not None
    assert np.array_equal(views["D"], _bundle(1)["D"])
    assert int(views["inf"][0]) == 100
    # memmap-backed views are read-only: corruption cannot flow back.
    with pytest.raises(ValueError):
        views["D"][0, 0] = 7
    # The picklable handle attaches too, digest-checked.
    assert np.array_equal(handle.attach()["D"], _bundle(1)["D"])


def test_publish_is_idempotent_and_content_addressed(tmp_path):
    store = PoolStore(tmp_path)
    digest = store_digest("t", 2)
    store.publish(digest, _bundle(2))
    mtime = os.path.getmtime(store._path(digest))
    store.publish(digest, _bundle(2))  # no rewrite of a valid entry
    assert os.path.getmtime(store._path(digest)) == mtime
    assert store.stats["published"] == 1


def test_store_digest_is_canonical_and_type_tagged():
    assert store_digest("a", 1, (2, 3)) == store_digest("a", 1, (2, 3))
    assert store_digest("a", 1) != store_digest("a", "1")  # int vs str
    assert store_digest((1, 2), 3) != store_digest(1, (2, 3))  # nesting
    assert store_digest(True) != store_digest(1)  # bool vs int
    with pytest.raises(PoolError):
        store_digest(object())


def test_census_graph_digest_is_content_addressed():
    g1 = OwnedDigraph.from_strategies([(1,), (2,), (0,)], 3)
    g2 = OwnedDigraph.from_strategies([(1,), (2,), (0,)], 3)
    g3 = OwnedDigraph.from_strategies([(2,), (2,), (0,)], 3)
    # Independently built instances of the same profile agree...
    assert census_graph_digest(g1) == census_graph_digest(g2)
    # ...different profiles and engine kinds do not.
    assert census_graph_digest(g1) != census_graph_digest(g3)
    assert census_graph_digest(g1) != census_graph_digest(g1, weighted=True)


@pytest.mark.parametrize(
    "corrupt",
    ["truncate", "flip_data", "flip_header", "clobber_magic"],
)
def test_corrupt_file_degrades_to_rebuild_never_wrong(tmp_path, corrupt):
    store = PoolStore(tmp_path)
    digest = store_digest("t", 3)
    path = store._path(digest)
    store.publish(digest, _bundle(3))
    blob = bytearray(path.read_bytes())
    if corrupt == "truncate":
        blob = blob[: len(blob) // 2]
    elif corrupt == "flip_data":
        blob[-5] ^= 0xFF  # payload bit flip: only the data CRC catches it
    elif corrupt == "flip_header":
        blob[9] ^= 0xFF
    else:
        blob[:4] = b"XXXX"
    path.write_bytes(bytes(blob))
    # Attach refuses and quarantines; it can never return a wrong matrix.
    assert store.attach(digest) is None
    assert store.stats["corrupt"] == 1
    assert not path.exists()
    # Republish recovers; the round-trip is exact again.
    store.publish(digest, _bundle(3))
    views = store.attach(digest)
    assert views is not None and np.array_equal(views["D"], _bundle(3)["D"])


def test_attach_store_file_rejects_foreign_digest(tmp_path):
    store = PoolStore(tmp_path)
    d3, d4 = store_digest("t", 3), store_digest("t", 4)
    store.publish(d3, _bundle(3))
    os.replace(store._path(d3), store._path(d4))  # misfiled entry
    with pytest.raises(PoolError):
        attach_store_file(store._path(d4), expected_digest=d4)
    assert store.attach(d4) is None  # quarantined, not served


# ----------------------------------------------------------------------
# Two-level model: random interleavings against both tiers
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["publish", "fetch", "evict_shm", "evict_disk", "gc"]),
            st.integers(min_value=0, max_value=4),
        ),
        max_size=30,
    ),
    max_segments=st.integers(min_value=1, max_value=3),
)
def test_two_level_interleavings_match_model(ops, max_segments):
    payloads = {i: np.arange(16, dtype=np.int64) * (i + 3) for i in range(5)}
    digests = {i: store_digest("model", i) for i in range(5)}
    nb = payloads[0].nbytes
    budget = 3 * nb + nb // 2  # holds exactly three entries
    with tempfile.TemporaryDirectory() as root:
        store = PoolStore(root, byte_budget=budget)
        disk: "dict[int, int]" = {}  # i -> LRU used stamp
        clock = 0
        shm: "OrderedDict[tuple, int]" = OrderedDict()
        with MatrixPool(max_segments=max_segments, store=store) as pool:
            for op, i in ops:
                key = ("k", i)
                if op == "publish":
                    pool.publish(key, {"a": payloads[i]}, digest=digests[i])
                    clock += 1
                    disk[i] = clock
                    while len(disk) * nb > budget:
                        victim = min(
                            (d for d in disk if d != i), key=disk.__getitem__
                        )
                        disk.pop(victim)
                    if key in shm:
                        shm.move_to_end(key)
                    else:
                        shm[key] = i
                        while len(shm) > max_segments:
                            shm.popitem(last=False)
                elif op == "fetch":
                    handle = pool.fetch(key, digest=digests[i])
                    if key in shm:
                        assert handle is not None
                        shm.move_to_end(key)
                    elif i in disk:
                        # Promoted from the mmap tier into a shm segment.
                        assert handle is not None
                        views = handle.attach()
                        assert np.array_equal(views["a"], payloads[i])
                        clock += 1
                        disk[i] = clock
                        shm[key] = i
                        while len(shm) > max_segments:
                            shm.popitem(last=False)
                    else:
                        assert handle is None
                elif op == "evict_shm":
                    assert pool.evict(key) == (key in shm)
                    shm.pop(key, None)
                elif op == "evict_disk":
                    assert store.evict(digests[i]) == (i in disk)
                    disk.pop(i, None)
                else:  # gc on a healthy directory is a no-op reconcile
                    stats = store.gc()
                    assert stats["removed_corrupt"] == 0
                    assert stats["evicted"] == 0
                    assert stats["files"] == len(disk)
                    clock = max(disk.values(), default=0)
                # Tier contents match the model exactly...
                assert pool.keys() == list(shm)
                on_disk = {
                    f[: -len(".mat")]
                    for f in os.listdir(root)
                    if f.endswith(".mat")
                }
                assert on_disk == {digests[i] for i in disk}
                entries = store.entries()
                assert set(entries) == on_disk
                # ...including the disk tier's LRU recency order.
                assert sorted(disk, key=disk.__getitem__) == sorted(
                    disk, key=lambda d: int(entries[digests[d]]["used"])
                )


# ----------------------------------------------------------------------
# Cross-process survival
# ----------------------------------------------------------------------
def test_matrices_survive_hard_killed_publisher(tmp_path):
    child_code = textwrap.dedent(
        f"""
        import os, signal
        import numpy as np
        from repro.core import PoolStore, store_digest
        store = PoolStore({str(tmp_path)!r})
        for i in range(3):
            D = (np.arange(16, dtype=np.int64) * (i + 3)).reshape(4, 4)
            store.publish(store_digest("x", i), {{"D": D}})
        print("ready", flush=True)
        os.kill(os.getpid(), signal.SIGKILL)
        """
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", child_code],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    assert proc.stdout is not None and proc.stdout.readline().strip() == "ready"
    proc.wait()
    assert proc.returncode == -signal.SIGKILL
    # A fresh store object (fresh process in spirit: content digests,
    # no shared state) attaches every bundle fully verified — 0 rebuilds.
    store = PoolStore(tmp_path)
    for i in range(3):
        views = store.attach(store_digest("x", i))
        assert views is not None
        assert np.array_equal(
            views["D"], (np.arange(16, dtype=np.int64) * (i + 3)).reshape(4, 4)
        )
    assert store.stats == {
        "published": 0,
        "hits": 3,
        "misses": 0,
        "evictions": 0,
        "corrupt": 0,
        "store_errors": 0,
    }


def _census_pool_run(tmp_path, pool_dir, **kwargs):
    game = BoundedBudgetGame([1] * 5)
    return census_scan(
        game,
        "max",
        workers=2,
        collect_equilibria=True,
        pool_dir=pool_dir,
        **kwargs,
    )


def test_census_fresh_process_attaches_from_disk_bit_identical(tmp_path):
    pool_dir = str(tmp_path / "pool")
    game = BoundedBudgetGame([1] * 5)
    cold = census_scan(game, "max", workers=2, collect_equilibria=True)
    # First pooled run builds and writes through; a subprocess stands in
    # for "a fresh process, days later" (no shm, no instance ids shared).
    child_code = textwrap.dedent(
        f"""
        from repro.core import BoundedBudgetGame, census_scan
        census_scan(BoundedBudgetGame([1]*5), "max", workers=2,
                    collect_equilibria=True, pool_dir={pool_dir!r})
        """
    )
    subprocess.run(
        [sys.executable, "-c", child_code],
        check=True,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    res = _census_pool_run(tmp_path, pool_dir)
    # Every shard warm start came off the mmap tier: 0 parent rebuilds.
    assert en.LAST_CENSUS_POOL_STATS["shards"] == 2
    assert en.LAST_CENSUS_POOL_STATS["warm_attached"] == 2
    assert en.LAST_CENSUS_POOL_STATS["disk_attached"] == 2
    assert en.LAST_CENSUS_POOL_STATS["parent_builds"] == 0
    assert res.report == cold.report
    assert res.equilibria == cold.equilibria


def test_census_corrupt_pool_file_rebuilds_identical_counts(tmp_path):
    pool_dir = tmp_path / "pool"
    cold = _census_pool_run(tmp_path, str(pool_dir))
    # Flip a byte in every published matrix file.
    mats = sorted(pool_dir.glob("*.mat"))
    assert mats
    for path in mats:
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
    res = _census_pool_run(tmp_path, str(pool_dir))
    # Corruption degraded to rebuild-and-republish: no disk attaches,
    # full parent builds, identical counts.
    assert en.LAST_CENSUS_POOL_STATS["disk_attached"] == 0
    assert en.LAST_CENSUS_POOL_STATS["parent_builds"] == 2
    assert res.report == cold.report
    assert res.equilibria == cold.equilibria
    # ...and the store is healthy again for the next run.
    res2 = _census_pool_run(tmp_path, str(pool_dir))
    assert en.LAST_CENSUS_POOL_STATS["disk_attached"] == 2
    assert res2.report == cold.report


def test_checkpointed_resume_reattaches_resume_rank_from_disk(tmp_path):
    """A checkpointed run killed mid-shard persists its checkpoint-rank
    matrices; the resume in a *fresh process* fetches the resume-rank
    matrix from the mmap tier instead of rebuilding it."""
    pool_dir = str(tmp_path / "pool")
    ck = str(tmp_path / "ck")
    child_code = textwrap.dedent(
        f"""
        from repro.core import BoundedBudgetGame, census_scan
        from repro.parallel import Fault, FaultPlan
        plan = FaultPlan(faults=tuple(
            Fault(kind="stall", shard_id=s, rank=r, attempt=a)
            for s, r in ((0, 120), (2, 580)) for a in range(4)
        ), stall_seconds=600.0)
        census_scan(BoundedBudgetGame([1]*5), "max", workers=2,
                    checkpoint_dir={ck!r}, shard_count=4,
                    pool_dir={pool_dir!r},
                    fault_plan=plan, collect_equilibria=True,
                    runtime_opts={{"checkpoint_interval": 16,
                                   "heartbeat_timeout": 600.0}})
        """
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", child_code],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,
    )
    try:
        time.sleep(7)
    finally:
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait()
    assert proc.returncode == -signal.SIGKILL
    # The dead run left checkpoint-rank matrices behind on disk.
    assert list((tmp_path / "pool").glob("*.mat"))

    game = BoundedBudgetGame([1] * 5)
    ref = census_scan(game, "max", collect_equilibria=True)
    res = census_scan(
        game,
        "max",
        workers=2,
        collect_equilibria=True,
        checkpoint_dir=ck,
        resume=True,
        pool_dir=pool_dir,
        runtime_opts={"checkpoint_interval": 16, "heartbeat_timeout": 600.0},
    )
    assert res.report == ref.report
    assert res.equilibria == ref.equilibria
    assert res.incomplete is None
    # The fresh process warm-started entirely off the mmap tier.
    assert en.LAST_CENSUS_POOL_STATS["disk_attached"] >= 1


# ----------------------------------------------------------------------
# Maintenance: gc, budget, CLI
# ----------------------------------------------------------------------
def test_gc_reaps_dead_writers_and_rebuilds_index(tmp_path):
    store = PoolStore(tmp_path)
    d0, d1 = store_digest("t", 0), store_digest("t", 1)
    store.publish(d0, _bundle(0))
    store.publish(d1, _bundle(1))
    # A dead writer's torn temp file, a live (this-process) temp file,
    # a corrupt entry, and a lost index.
    dead = subprocess.Popen([sys.executable, "-c", ""])
    dead.wait()
    (tmp_path / f".tmp-{dead.pid}-0").write_bytes(b"torn")
    mine = tmp_path / f".tmp-{os.getpid()}-999"
    mine.write_bytes(b"in flight")
    blob = bytearray(store._path(d1).read_bytes())
    blob[9] ^= 0xFF  # header corruption: gc validates headers on scan
    store._path(d1).write_bytes(bytes(blob))
    (tmp_path / INDEX_NAME).unlink()
    stats = store.gc()
    assert stats == {
        "files": 1,
        "bytes": _bundle(0)["D"].nbytes + _bundle(0)["inf"].nbytes,
        "removed_tmp": 1,
        "removed_corrupt": 1,
        "evicted": 0,
    }
    assert mine.exists()  # live writers are never reaped
    assert store.attach(d0) is not None
    assert store.attach(d1) is None
    mine.unlink()


def test_gc_enforces_byte_budget_lru(tmp_path):
    store = PoolStore(tmp_path)
    digests = [store_digest("t", i) for i in range(4)]
    for i, d in enumerate(digests):
        store.publish(d, _bundle(i))
    store.lookup(digests[0])  # refresh 0: 1 becomes least recent
    nb = sum(a.nbytes for a in _bundle(0).values())
    stats = store.gc(byte_budget=2 * nb)
    assert stats["evicted"] == 2
    assert set(store.entries()) == {digests[0], digests[3]}


def test_index_is_advisory_not_authoritative(tmp_path):
    store = PoolStore(tmp_path)
    digest = store_digest("t", 5)
    store.publish(digest, _bundle(5))
    # Clobber the index: files are self-describing, attach still works
    # and gc rebuilds the manifest from the directory.
    (tmp_path / INDEX_NAME).write_text("{ not json")
    assert store.attach(digest) is not None
    store.gc()
    idx = json.loads((tmp_path / INDEX_NAME).read_text())
    assert set(idx["entries"]) == {digest}


def test_cli_pool_gc(tmp_path, capsys):
    from repro.cli import main

    store = PoolStore(tmp_path)
    store.publish(store_digest("t", 6), _bundle(6))
    dead = subprocess.Popen([sys.executable, "-c", ""])
    dead.wait()
    (tmp_path / f".tmp-{dead.pid}-0").write_bytes(b"torn")
    assert main(["pool", "gc", "--dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "1 files" in out and "reaped 1 temp" in out
    assert not (tmp_path / f".tmp-{dead.pid}-0").exists()


def test_cli_run_pool_dir_attaches_on_rerun(tmp_path, capsys):
    from repro.cli import main

    pool_dir = str(tmp_path / "pool")
    assert main(["run", "EXACT-tiny", "--workers", "2", "--pool-dir", pool_dir]) == 0
    capsys.readouterr()
    assert main(["run", "EXACT-tiny", "--workers", "2", "--pool-dir", pool_dir]) == 0
    assert "EXACT-tiny" in capsys.readouterr().out
    # The second run's final scan warm-started entirely from disk.
    assert en.LAST_CENSUS_POOL_STATS["disk_attached"] > 0
    assert en.LAST_CENSUS_POOL_STATS["parent_builds"] == 0


# ----------------------------------------------------------------------
# Checkpoint-matrix persistence failures must warn, not vanish
# ----------------------------------------------------------------------
def test_persist_checkpoint_matrix_failure_warns_and_counts(tmp_path, monkeypatch):
    # Regression: a failing publish was swallowed with a bare `pass`,
    # silently disabling disk warm-starts for every later resume.
    import pytest as _pytest

    from repro.core import enumeration as en
    from repro.errors import PoolError
    from repro.graphs import DistanceEngine
    from repro.graphs.digraph import OwnedDigraph

    g = OwnedDigraph.from_strategies([[1], [2], [0]])
    engine = DistanceEngine(g.undirected_csr())
    store_dir = str(tmp_path / "store")
    store = PoolStore(store_dir)

    def boom(digest, arrays):
        raise PoolError("disk on fire")

    monkeypatch.setattr(store, "publish", boom)
    monkeypatch.setitem(en._WORKER_STORES, store_dir, store)
    before = store.stats["store_errors"]
    with _pytest.warns(RuntimeWarning, match="could not persist checkpoint matrix"):
        en._persist_checkpoint_matrix(store_dir, g, engine, weighted=False)
    assert store.stats["store_errors"] == before + 1


def test_persist_checkpoint_matrix_unusable_store_warns(tmp_path, monkeypatch):
    import pytest as _pytest

    from repro.core import enumeration as en
    from repro.errors import PoolError
    from repro.graphs import DistanceEngine
    from repro.graphs.digraph import OwnedDigraph

    g = OwnedDigraph.from_strategies([[1], [2], [0]])
    engine = DistanceEngine(g.undirected_csr())

    def unusable(store_dir):
        raise PoolError("store directory is not writable")

    monkeypatch.setattr(en, "_checkpoint_store", unusable)
    with _pytest.warns(RuntimeWarning, match="is unusable"):
        en._persist_checkpoint_matrix(str(tmp_path / "s"), g, engine, weighted=False)
