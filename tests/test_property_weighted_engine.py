"""Property-based tests for weighted distance-cache coherence.

The metamorphic property throughout, mirroring
``test_property_engine.py``: any interleaving of strategy swaps, vertex
weight transfers, and edge-weight edits with distance queries through
the shared :class:`WeightedDistanceCache` must be indistinguishable
from recomputing every weighted matrix from scratch — "repair equals
recompute". Plus the staleness contract: environments captured before
a substrate change *or a weights-revision bump* must raise instead of
answering from old state.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.weighted import (
    WeightedRealization,
    WeightedSwapEnvironment,
    _weighted_swap_improves,
    fold_all_poor_leaves,
    is_weighted_weak_equilibrium,
    poor_leaves,
    weighted_sum_cost,
    weighted_swap_sweep,
)
from repro.core import WeightedDistanceCache
from repro.errors import GameError, StaleDistanceError
from repro.graphs import (
    EdgeWeightMap,
    OwnedDigraph,
    WeightedDistanceEngine,
    weighted_csr_from_csr,
    weighted_csr_without_vertex,
)


def _random_graph(rng: np.random.Generator, n: int, p: float = 0.3) -> OwnedDigraph:
    g = OwnedDigraph(n)
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < p:
                g.add_arc(u, v)
    return g


def _random_strategy(rng: np.random.Generator, n: int, u: int, size: int) -> list[int]:
    others = [v for v in range(n) if v != u]
    size = min(size, len(others))
    picked = rng.choice(others, size=size, replace=False) if size else []
    return [int(v) for v in np.atleast_1d(picked)]


def _fresh_reference(graph: OwnedDigraph, ew, probe: "int | None") -> np.ndarray:
    """From-scratch weighted matrix of U(G) (or U(G - probe))."""
    wcsr = weighted_csr_from_csr(graph.undirected_csr(), ew)
    if probe is not None:
        wcsr = weighted_csr_without_vertex(wcsr, probe)
    kwargs = {} if ew is None else {"max_weight": ew.max_weight()}
    return WeightedDistanceEngine(wcsr, **kwargs).distances()


@given(
    n=st.integers(min_value=2, max_value=11),
    seed=st.integers(min_value=0, max_value=2**31),
    use_edge_weights=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_repair_equals_recompute_under_mixed_mutation_sequences(
    n, seed, use_edge_weights
):
    """Random swap / weight-transfer / edge-weight-edit interleavings:
    cached weighted engines always agree with a from-scratch build of
    the same substrate."""
    rng = np.random.default_rng(seed)
    g = _random_graph(rng, n)
    ew = EdgeWeightMap() if use_edge_weights else None
    wr = WeightedRealization(
        graph=g, weights=rng.integers(1, 5, size=n).astype(np.int64)
    )
    cache = WeightedDistanceCache(g, edge_weights=ew, max_weight=6)
    for _ in range(6):
        op = rng.random()
        if op < 0.5:
            u = int(rng.integers(n))
            g.set_strategy(u, _random_strategy(rng, n, u, int(rng.integers(0, n))))
        elif op < 0.75 and ew is not None:
            edges = g.underlying_edges()
            if edges:
                x, y = edges[int(rng.integers(len(edges)))]
                ew.set_weight(x, y, int(rng.integers(1, 7)))
        else:
            src, dst = rng.choice(n, size=2, replace=False)
            if wr.weights[int(src)] > 0:
                wr.transfer_weight(int(src), int(dst))
        if rng.random() < 0.7:  # interleave queries with mutations
            probe = int(rng.integers(n))
            got = cache.player(probe).distances()
            assert np.array_equal(got, _fresh_reference(g, ew, probe))
            base = cache.base().distances()
            assert np.array_equal(base, _fresh_reference(g, ew, None))
    for probe in range(n):
        got = cache.player(probe).distances()
        assert np.array_equal(got, _fresh_reference(g, ew, probe))


@given(
    n=st.integers(min_value=3, max_value=9),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25, deadline=None)
def test_cached_section6_checkers_equal_reference(n, seed):
    """Swap verdicts, weighted costs and fold cascades are bit-identical
    between the loop path and the engine path on random instances."""
    rng = np.random.default_rng(seed)
    g = _random_graph(rng, n, p=0.35)
    w = rng.integers(0, 5, size=n).astype(np.int64)
    if w.sum() == 0:
        w[int(rng.integers(n))] = 1
    wr = WeightedRealization(graph=g, weights=w)
    cache = WeightedDistanceCache(g)
    for u in range(n):
        assert weighted_sum_cost(wr, u) == weighted_sum_cost(wr, u, cache=cache)
        assert _weighted_swap_improves(wr, u) == _weighted_swap_improves(
            wr, u, cache=cache
        )
    assert is_weighted_weak_equilibrium(wr) == is_weighted_weak_equilibrium(
        wr, cache=cache
    )
    assert weighted_swap_sweep(wr) == weighted_swap_sweep(wr, cache=cache)
    ref = fold_all_poor_leaves(wr)
    eng = fold_all_poor_leaves(wr, cache=cache)
    assert ref.graph == eng.graph
    assert ref.weights.tolist() == eng.weights.tolist()
    assert poor_leaves(eng) == []
    # The rebound cache serves the folded working graph coherently.
    assert np.array_equal(
        cache.base().distances(), _fresh_reference(eng.graph, None, None)
    )


@given(
    n=st.integers(min_value=3, max_value=9),
    seed=st.integers(min_value=0, max_value=2**31),
    max_rounds=st.integers(min_value=0, max_value=4),
)
@settings(max_examples=20, deadline=None)
def test_bounded_fold_rounds_match_reference(n, seed, max_rounds):
    rng = np.random.default_rng(seed)
    g = _random_graph(rng, n, p=0.3)
    wr = WeightedRealization(graph=g, weights=np.ones(n, dtype=np.int64))
    cache = WeightedDistanceCache(g)
    ref = fold_all_poor_leaves(wr, max_rounds=max_rounds)
    eng = fold_all_poor_leaves(wr, max_rounds=max_rounds, cache=cache)
    assert ref.graph == eng.graph
    assert ref.weights.tolist() == eng.weights.tolist()


# ----------------------------------------------------------------------
# Staleness / guards
# ----------------------------------------------------------------------
def test_weights_revision_bump_stales_environment():
    """A vertex weight transfer must invalidate every environment built
    before it, even though the distance matrices are untouched."""
    g = OwnedDigraph(6)
    for i in range(5):
        g.add_arc(i, i + 1)
    wr = WeightedRealization(graph=g, weights=np.ones(6, dtype=np.int64))
    cache = WeightedDistanceCache(g)
    env = WeightedSwapEnvironment(wr, 1, cache=cache)
    assert env.is_fresh()
    verdict = env.swap_improves()
    wr.transfer_weight(5, 4)
    assert wr.weights_revision == 1
    assert not env.is_fresh()
    with pytest.raises(StaleDistanceError):
        env.swap_improves()
    with pytest.raises(StaleDistanceError):
        env.distances_for((2,))
    # A fresh environment answers for the new weights.
    env2 = WeightedSwapEnvironment(wr, 1, cache=cache)
    assert isinstance(env2.swap_improves(), bool)
    assert isinstance(verdict, bool)


def test_edge_weight_edit_stales_environment():
    """An EdgeWeightMap edit changes the metric without touching the
    graph revision, the vertex weights, or (until a sync) the engine
    epoch — the environment must still refuse to answer."""
    g = OwnedDigraph(4)
    for i in range(3):
        g.add_arc(i, i + 1)
    ew = EdgeWeightMap()
    wr = WeightedRealization(graph=g, weights=np.ones(4, dtype=np.int64))
    cache = WeightedDistanceCache(g, edge_weights=ew)
    env = WeightedSwapEnvironment(wr, 0, cache=cache)
    env.swap_improves()
    ew.set_weight(1, 2, 1)  # same length, but the metric *may* have moved
    assert not env.is_fresh()
    with pytest.raises(StaleDistanceError):
        env.swap_improves()
    # A fresh environment (after the cache resyncs) answers again.
    env2 = WeightedSwapEnvironment(wr, 0, cache=cache)
    assert isinstance(env2.swap_improves(), bool)


def test_substrate_change_stales_environment_via_epoch():
    rng = np.random.default_rng(3)
    g = _random_graph(rng, 7, p=0.4)
    wr = WeightedRealization(graph=g, weights=np.ones(7, dtype=np.int64))
    cache = WeightedDistanceCache(g)
    u, v = 1, 4
    env = WeightedSwapEnvironment(wr, u, cache=cache)
    env.swap_improves()
    g.set_strategy(v, _random_strategy(rng, 7, v, 2))
    cache.player(u)  # sync the new substrate: epoch moves on
    if env.engine.epoch != env._epoch:
        with pytest.raises(StaleDistanceError):
            env.swap_improves()
    else:
        # The strategy change happened to leave U(G - u) intact.
        assert env.is_fresh()


def test_own_move_keeps_environment_fresh():
    """U(G - u) and In(u) are independent of u's strategy, so u's own
    moves never stale u's weighted environment."""
    g = OwnedDigraph(5)
    for i in range(4):
        g.add_arc(i, i + 1)
    wr = WeightedRealization(graph=g, weights=np.arange(1, 6, dtype=np.int64))
    cache = WeightedDistanceCache(g)
    env = WeightedSwapEnvironment(wr, 0, cache=cache)
    before = env.swap_improves()
    g.set_strategy(0, [2])
    assert env.is_fresh()
    assert isinstance(before, bool)


def test_cache_graph_identity_guard():
    g1 = OwnedDigraph(4)
    g1.add_arc(0, 1)
    g2 = g1.copy()
    wr = WeightedRealization(graph=g1, weights=np.ones(4, dtype=np.int64))
    cache = WeightedDistanceCache(g2)
    with pytest.raises(GameError):
        weighted_sum_cost(wr, 0, cache=cache)
    with pytest.raises(GameError):
        is_weighted_weak_equilibrium(wr, cache=cache)


def test_oversized_sentinel_rejected_by_section6_machinery():
    # A max_weight hint big enough to raise the engines' sentinel above
    # Cinf would silently change every cross-component cost term, so
    # the Section 6 machinery must refuse the cache outright.
    g = OwnedDigraph(4)
    g.add_arc(0, 1)
    g.add_arc(2, 3)
    wr = WeightedRealization(graph=g, weights=np.ones(4, dtype=np.int64))
    cache = WeightedDistanceCache(g, max_weight=100)
    with pytest.raises(GameError):
        weighted_sum_cost(wr, 0, cache=cache)
    with pytest.raises(GameError):
        is_weighted_weak_equilibrium(wr, cache=cache)
    # A modest hint that keeps the sentinel at Cinf stays bit-identical.
    small = WeightedDistanceCache(g, max_weight=2)
    assert weighted_sum_cost(wr, 0, cache=small) == weighted_sum_cost(wr, 0)


def test_weight_growth_past_hint_rebuilds_engine_pool():
    # Raising an edge weight beyond the construction-time headroom must
    # transparently rebuild the pool with a larger sentinel, not error.
    g = OwnedDigraph(3)
    g.add_arc(0, 1)
    g.add_arc(1, 2)
    ew = EdgeWeightMap()
    cache = WeightedDistanceCache(g, edge_weights=ew)
    assert cache.base().distance(0, 2) == 2
    ew.set_weight(0, 1, 50)
    assert cache.max_weight == 1  # grows lazily on the next access
    assert cache.base().distance(0, 2) == 51
    assert cache.max_weight == 50
    assert cache.base().inf > 2 * 50
    got = cache.player(1).distances()
    assert np.array_equal(got, _fresh_reference(g, ew, 1))


def test_non_unit_edge_weights_rejected_by_section6_machinery():
    g = OwnedDigraph(3)
    g.add_arc(0, 1)
    g.add_arc(1, 2)
    ew = EdgeWeightMap(overrides={(0, 1): 3})
    wr = WeightedRealization(graph=g, weights=np.ones(3, dtype=np.int64))
    cache = WeightedDistanceCache(g, edge_weights=ew)
    with pytest.raises(GameError):
        weighted_sum_cost(wr, 0, cache=cache)


def test_transfer_weight_validation():
    g = OwnedDigraph(3)
    wr = WeightedRealization(graph=g, weights=np.ones(3, dtype=np.int64))
    from repro.errors import GraphError

    with pytest.raises(GraphError):
        wr.transfer_weight(0, 0)
    with pytest.raises(GraphError):
        wr.transfer_weight(0, 5)
    assert wr.weights_revision == 0


def test_lru_eviction_bounds_cached_engines():
    rng = np.random.default_rng(9)
    g = _random_graph(rng, 10, p=0.3)
    cache = WeightedDistanceCache(g, max_player_engines=3)
    for u in range(10):
        cache.player(u)
    stats = cache.stats()
    assert stats["player_engines"] == 3
    assert stats["evictions"] == 7
    got = cache.player(0).distances()
    assert np.array_equal(got, _fresh_reference(g, None, 0))
