"""One conformance suite for every distance-engine implementation.

The unit BFS engine and the weighted Dial engine (run on unit weights)
promise the same contract: scipy/networkx-exact matrices, delta repairs
indistinguishable from recomputation, a noop on rolled-back substrates,
an epoch/staleness guard, read-only views, and — new in this PR —
copy-on-write adoption of snapshot matrices that never writes the
adopted buffer. Each case here runs once per engine via the
``engine_harness`` fixture matrix in ``conftest.py``, replacing the
copy-pasted suites that ``test_graphs_engine.py`` and
``test_weighted_engine.py`` used to carry (those files retain only
engine-specific behavior: real weights, pendant fast paths, adaptive
budgets).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError, StaleDistanceError, VertexError
from repro.graphs import UNREACHABLE, OwnedDigraph, all_pairs_distances, cinf

from conftest import (
    networkx_distance_oracle,
    random_owned_digraph,
    random_strategy_swap,
    random_tree_digraph,
    scipy_distance_oracle,
)


# ----------------------------------------------------------------------
# Batched kernel vs scipy / networkx oracles
# ----------------------------------------------------------------------
def test_initial_build_matches_scipy_and_networkx(rng, engine_harness):
    for _ in range(10):
        n = int(rng.integers(2, 16))
        g = random_owned_digraph(rng, n, p=float(rng.uniform(0.05, 0.45)))
        engine = engine_harness.build(g.undirected_csr())
        got = engine.distances()
        assert np.array_equal(got, scipy_distance_oracle(g))
        assert np.array_equal(got, networkx_distance_oracle(g))


def test_disconnected_graph_uses_unreachable_sentinel(two_components, engine_harness):
    engine = engine_harness.build(two_components.undirected_csr())
    d = engine.distances()
    assert d[0, 1] == 1
    assert d[0, 2] == UNREACHABLE
    assert d[4, 0] == UNREACHABLE
    assert d[4, 4] == 0
    # Internally unreachable pairs carry the finite Cinf sentinel.
    assert engine.inf == cinf(5)
    assert engine.matrix[0, 2] == cinf(5)
    assert engine.distance(0, 2) == UNREACHABLE
    assert engine.distance(2, 3) == 1


def test_distances_from_batched_rows_match_oracle(rng, engine_harness):
    for _ in range(6):
        n = int(rng.integers(3, 18))
        g = random_owned_digraph(rng, n, p=0.2)
        engine = engine_harness.build(g.undirected_csr())
        oracle = scipy_distance_oracle(g)
        oracle[oracle == UNREACHABLE] = engine.inf
        k = int(rng.integers(1, n + 1))
        sources = rng.choice(n, size=k, replace=False)
        rows = engine.distances_from(sources)
        assert np.array_equal(rows, oracle[sources])
        # Preallocated buffer path returns identical content.
        buf = np.empty((k, n), dtype=rows.dtype)
        out = engine.distances_from(sources, out=buf)
        assert out is buf
        assert np.array_equal(buf, rows)


def test_isolated_substrate_matches_bfs_reference(rng, engine_harness):
    from repro.graphs import csr_without_vertex

    for _ in range(6):
        n = int(rng.integers(2, 14))
        g = random_owned_digraph(rng, n, p=0.3)
        u = int(rng.integers(n))
        engine = engine_harness.build_isolated(g.undirected_csr(), u)
        ref = all_pairs_distances(csr_without_vertex(g.undirected_csr(), u))
        assert np.array_equal(engine.distances(), ref)
        assert engine_harness.degree(engine, u) == 0


# ----------------------------------------------------------------------
# Delta repair == recompute
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dirty_fraction", [None, 1.0, 0.0])
def test_update_tracks_random_swaps(rng, engine_harness, dirty_fraction):
    kwargs = {} if dirty_fraction is None else {"dirty_fraction": dirty_fraction}
    for _ in range(5):
        n = int(rng.integers(3, 16))
        g = random_owned_digraph(rng, n, p=0.25)
        engine = engine_harness.build(g.undirected_csr(), **kwargs)
        for _ in range(8):
            random_strategy_swap(rng, g)
            status = engine_harness.update(engine, g.undirected_csr())
            assert status in ("noop", "delta", "rebuild")
            if dirty_fraction == 0.0:
                assert status in ("noop", "rebuild")
            assert np.array_equal(engine.distances(), scipy_distance_oracle(g))


def test_update_handles_disconnection_and_reconnection(engine_harness):
    g = OwnedDigraph(6)
    for i in range(5):
        g.add_arc(i, i + 1)
    engine = engine_harness.build(g.undirected_csr(), dirty_fraction=1.0)
    # Cut the path in the middle: everything across the cut unreachable.
    g.remove_arc(2, 3)
    engine_harness.update(engine, g.undirected_csr())
    assert np.array_equal(engine.distances(), scipy_distance_oracle(g))
    assert engine.distance(0, 5) == UNREACHABLE
    # Reconnect differently.
    g.add_arc(0, 5)
    engine_harness.update(engine, g.undirected_csr())
    assert np.array_equal(engine.distances(), scipy_distance_oracle(g))
    assert engine.distance(2, 3) == 5  # rerouted 2-1-0-5-4-3


# ----------------------------------------------------------------------
# Diff-free entry points + deletion repair hierarchy
# ----------------------------------------------------------------------
def test_remove_and_add_edge_equal_recompute(rng, engine_harness):
    """remove_edge / add_edge (the diff-free op-forwarding entry
    points) must be indistinguishable from a fresh build at every step."""
    for _ in range(6):
        n = int(rng.integers(3, 14))
        g = random_owned_digraph(rng, n, p=float(rng.uniform(0.15, 0.45)))
        engine = engine_harness.build(g.undirected_csr())
        for _ in range(12):
            csr = engine_harness.current_substrate_csr(engine)
            edges = [
                (u, int(v)) for u in range(n) for v in csr.neighbors(u) if u < int(v)
            ]
            if edges and rng.random() < 0.6:
                x, y = edges[int(rng.integers(len(edges)))]
                status = engine_harness.remove_edge(engine, x, y)
            else:
                non = [
                    (a, b)
                    for a in range(n)
                    for b in range(a + 1, n)
                    if not csr.has_edge(a, b)
                ]
                if not non:
                    continue
                x, y = non[int(rng.integers(len(non)))]
                status = engine_harness.add_edge(engine, x, y)
            assert status in ("delta", "rebuild")
            fresh = engine_harness.build(engine_harness.current_substrate_csr(engine))
            assert np.array_equal(np.asarray(engine.matrix), np.asarray(fresh.matrix))


def test_remove_edge_rejects_absent_and_add_rejects_present(engine_harness):
    g = OwnedDigraph(4)
    g.add_arc(0, 1)
    engine = engine_harness.build(g.undirected_csr())
    with pytest.raises(GraphError):
        engine_harness.remove_edge(engine, 0, 2)
    with pytest.raises(GraphError):
        engine_harness.add_edge(engine, 0, 1)


def test_pendant_removal_is_a_column_fix(engine_harness):
    """Removing a degree-1 endpoint's edge must repair below row
    granularity: no rebuild, no row recompute, a pendant-fix stat."""
    g = OwnedDigraph(6)
    for i in range(5):
        g.add_arc(i, i + 1)
    engine = engine_harness.build(g.undirected_csr())
    rows_before = engine.stats["rows_recomputed"]
    status = engine_harness.remove_edge(engine, 4, 5)  # 5 is a leaf
    assert status == "delta"
    assert engine.stats["pendant_fixes"] == 1
    assert engine.stats["rebuilds"] == 1  # only the constructor's
    assert engine.stats["rows_recomputed"] == rows_before
    assert engine.distance(0, 5) == UNREACHABLE
    assert engine.distance(5, 5) == 0
    fresh = engine_harness.build(engine_harness.current_substrate_csr(engine))
    assert np.array_equal(np.asarray(engine.matrix), np.asarray(fresh.matrix))


def test_tree_deletions_use_affected_region_not_rows(rng, engine_harness):
    """On tree-like substrates every deletion must resolve in the
    pendant or affected-region tier — zero whole-row recomputes and
    zero rebuilds — while staying bit-identical to a fresh build."""
    g = random_tree_digraph(rng, 20)
    engine = engine_harness.build(g.undirected_csr())
    for key in engine.stats:
        engine.stats[key] = 0
    edges = [
        (u, int(v))
        for u in range(20)
        for v in g.undirected_csr().neighbors(u)
        if u < int(v)
    ]
    rng.shuffle(edges)
    for x, y in edges:
        status = engine_harness.remove_edge(engine, x, y)
        assert status == "delta"
        fresh = engine_harness.build(engine_harness.current_substrate_csr(engine))
        assert np.array_equal(np.asarray(engine.matrix), np.asarray(fresh.matrix))
    assert engine.stats["rebuilds"] == 0
    assert engine.stats["rows_recomputed"] == 0
    assert engine.stats["region_repairs"] > 0
    assert engine.stats["pendant_fixes"] > 0
    assert engine.stats["region_vertices"] > 0


# ----------------------------------------------------------------------
# Rollback / noop semantics
# ----------------------------------------------------------------------
def test_update_noop_on_identical_edge_set(engine_harness):
    g = OwnedDigraph(4)
    g.add_arc(0, 1)
    g.add_arc(1, 2)
    engine = engine_harness.build(g.undirected_csr())
    epoch = engine.epoch
    # A brace collapses onto the existing undirected edge: no edge-set
    # change, so distances and the epoch stay put.
    g.add_arc(1, 0)
    assert engine_harness.update(engine, g.undirected_csr()) == "noop"
    assert engine.epoch == epoch
    g.remove_arc(1, 0)
    assert engine_harness.update(engine, g.undirected_csr()) == "noop"
    assert engine.epoch == epoch


def test_rollback_after_synced_change_restores_distances(rng, engine_harness):
    g = random_owned_digraph(rng, 9, p=0.3)
    engine = engine_harness.build(g.undirected_csr())
    before = engine.distances()
    u = int(rng.integers(9))
    old = [int(v) for v in g.out_neighbors(u)]
    others = [v for v in range(9) if v != u]
    g.set_strategy(u, [int(v) for v in rng.choice(others, size=3, replace=False)])
    engine_harness.update(engine, g.undirected_csr())  # sync the change
    g.set_strategy(u, old)  # and roll it back
    status = engine_harness.update(engine, g.undirected_csr())
    assert status in ("noop", "delta", "rebuild")
    assert np.array_equal(engine.distances(), before)


def test_update_rejects_size_change(engine_harness):
    g = OwnedDigraph(4)
    g.add_arc(0, 1)
    engine = engine_harness.build(g.undirected_csr())
    other = OwnedDigraph(5)
    other.add_arc(0, 1)
    with pytest.raises(GraphError):
        engine_harness.update(engine, other.undirected_csr())


# ----------------------------------------------------------------------
# Epoch / staleness contract
# ----------------------------------------------------------------------
def test_epoch_bumps_and_ensure_epoch_raises(rng, engine_harness):
    g = random_owned_digraph(rng, 8, p=0.3)
    engine = engine_harness.build(g.undirected_csr())
    seen = engine.epoch
    engine.ensure_epoch(seen)
    random_strategy_swap(rng, g)
    status = engine_harness.update(engine, g.undirected_csr())
    if status == "noop":
        engine.ensure_epoch(seen)
    else:
        assert engine.epoch != seen
        with pytest.raises(StaleDistanceError):
            engine.ensure_epoch(seen)


def test_matrix_view_is_read_only(engine_harness):
    g = OwnedDigraph(3)
    g.add_arc(0, 1)
    engine = engine_harness.build(g.undirected_csr())
    with pytest.raises(ValueError):
        engine.matrix[0, 1] = 7
    with pytest.raises(ValueError):
        engine.row(0)[1] = 7


def test_vertex_and_input_validation(engine_harness):
    g = OwnedDigraph(3)
    g.add_arc(0, 1)
    engine = engine_harness.build(g.undirected_csr())
    with pytest.raises(VertexError):
        engine.row(3)
    with pytest.raises(VertexError):
        engine.distance(0, -1)
    with pytest.raises(VertexError):
        engine.distances_from([0, 5])
    with pytest.raises(GraphError):
        engine_harness.build(g.undirected_csr(), dirty_fraction=1.5)
    with pytest.raises(GraphError):
        engine_harness.build(g.undirected_csr(), inf=2)


def test_single_vertex_graph(engine_harness):
    g = OwnedDigraph(1)
    engine = engine_harness.build(g.undirected_csr())
    assert engine.distances().shape == (1, 1)
    assert engine.distance(0, 0) == 0


# ----------------------------------------------------------------------
# Snapshot adoption (copy-on-write) — the matrix-pool contract
# ----------------------------------------------------------------------
def test_snapshot_adoption_matches_rebuild(rng, engine_harness):
    g = random_owned_digraph(rng, 10, p=0.3)
    built = engine_harness.build(g.undirected_csr())
    adopted = engine_harness.from_snapshot(g.undirected_csr(), built.matrix)
    assert adopted.copy_on_write
    assert adopted.stats["rebuilds"] == 0  # no initial BFS/SSSP paid
    assert np.array_equal(adopted.distances(), built.distances())
    assert adopted.matrix.dtype == built.matrix.dtype
    assert adopted.inf == built.inf


def test_snapshot_repairs_equal_recompute_and_never_write_source(rng, engine_harness):
    g = random_owned_digraph(rng, 9, p=0.3)
    built = engine_harness.build(g.undirected_csr())
    source = np.asarray(built.matrix).copy()
    frozen = source.copy()
    frozen.flags.writeable = False
    adopted = engine_harness.from_snapshot(g.undirected_csr(), frozen)
    for _ in range(6):
        random_strategy_swap(rng, g)
        adopted_status = engine_harness.update(adopted, g.undirected_csr())
        assert np.array_equal(adopted.distances(), scipy_distance_oracle(g))
        if adopted_status != "noop":
            assert not adopted.copy_on_write
    # The adopted buffer was never written, even across repairs/rebuilds.
    assert np.array_equal(np.asarray(frozen), source)


def test_snapshot_copy_mode_detaches_immediately(rng, engine_harness):
    g = random_owned_digraph(rng, 7, p=0.35)
    built = engine_harness.build(g.undirected_csr())
    adopted = engine_harness.from_snapshot(g.undirected_csr(), built.matrix, copy=True)
    assert not adopted.copy_on_write
    assert np.array_equal(adopted.distances(), built.distances())


def test_snapshot_validates_shape_and_dtype(engine_harness):
    g = OwnedDigraph(4)
    g.add_arc(0, 1)
    built = engine_harness.build(g.undirected_csr())
    with pytest.raises(GraphError):
        engine_harness.from_snapshot(
            g.undirected_csr(), np.zeros((3, 3), dtype=built.matrix.dtype)
        )
    with pytest.raises(GraphError):
        engine_harness.from_snapshot(
            g.undirected_csr(), np.asarray(built.matrix, dtype=np.float64)
        )


# ----------------------------------------------------------------------
# Query tier + lazy row-on-demand mode — the PR-6 contract
# ----------------------------------------------------------------------
def test_query_matches_matrix_including_cinf(rng, engine_harness):
    """Bidirectional point queries must be bit-identical to the full
    matrix entry on every pair — including the Cinf sentinel on
    disconnected pairs — across the whole conformance matrix."""
    for _ in range(8):
        n = int(rng.integers(2, 16))
        g = random_owned_digraph(rng, n, p=float(rng.uniform(0.05, 0.4)))
        full = engine_harness.build(g.undirected_csr())
        lazy = engine_harness.build(g.undirected_csr(), rows="lazy")
        ref = np.asarray(full.matrix)
        for u in range(n):
            for v in range(n):
                assert full.query(u, v) == int(ref[u, v])
                assert lazy.query(u, v) == int(ref[u, v])


def test_lazy_build_defers_all_pairs_work(engine_harness):
    g = OwnedDigraph(6)
    for i in range(5):
        g.add_arc(i, i + 1)
    engine = engine_harness.build(g.undirected_csr(), rows="lazy")
    assert engine.lazy
    assert engine.stats["rebuilds"] == 0  # no initial all-pairs sweep
    assert engine.hot_rows().size == 0
    assert engine.query(0, 5) == 5
    assert engine.lazy  # a point query materialises nothing
    assert engine.hot_rows().size == 0
    assert engine.stats["point_queries"] == 1


def test_lazy_row_reads_materialise_on_demand(rng, engine_harness):
    g = random_owned_digraph(rng, 10, p=0.3)
    full = engine_harness.build(g.undirected_csr())
    lazy = engine_harness.build(g.undirected_csr(), rows="lazy")
    got = lazy.row(3)
    assert np.array_equal(got, np.asarray(full.matrix)[3])
    if lazy.lazy:  # a small promotion threshold may already have fired
        assert 3 in lazy.hot_rows().tolist()
    with pytest.raises(ValueError):
        got[0] = 7  # read-only view either way


def test_lazy_matrix_read_promotes_to_full(rng, engine_harness):
    g = random_owned_digraph(rng, 9, p=0.3)
    full = engine_harness.build(g.undirected_csr())
    lazy = engine_harness.build(g.undirected_csr(), rows="lazy")
    epoch = lazy.epoch
    assert np.array_equal(np.asarray(lazy.matrix), np.asarray(full.matrix))
    assert not lazy.lazy
    assert lazy.stats["promotions"] == 1
    assert lazy.epoch == epoch  # promotion is a read, not a mutation


def test_lazy_mutations_keep_hot_rows_exact(rng, engine_harness):
    """Arbitrary remove/add/update sequences on a lazy engine: every
    read (point query, row, promoted matrix) agrees with a fresh build
    of the current substrate at every step."""
    for _ in range(4):
        n = int(rng.integers(4, 12))
        g = random_owned_digraph(rng, n, p=0.3)
        lazy = engine_harness.build(g.undirected_csr(), rows="lazy")
        # Warm a few rows so repairs have hot state to maintain.
        lazy.ensure_rows([0, n // 2])
        for _ in range(8):
            random_strategy_swap(rng, g)
            engine_harness.update(lazy, g.undirected_csr())
            fresh = engine_harness.build(g.undirected_csr())
            ref = np.asarray(fresh.matrix)
            u = int(rng.integers(n))
            v = int(rng.integers(n))
            assert lazy.query(u, v) == int(ref[u, v])
            if lazy.lazy:
                for s in lazy.hot_rows().tolist():
                    assert np.array_equal(lazy.row(s), ref[s])
        assert np.array_equal(
            np.asarray(lazy.matrix),
            np.asarray(engine_harness.build(g.undirected_csr()).matrix),
        )


def test_lazy_staleness_contract(rng, engine_harness):
    g = random_owned_digraph(rng, 8, p=0.35)
    lazy = engine_harness.build(g.undirected_csr(), rows="lazy")
    seen = lazy.epoch
    lazy.ensure_epoch(seen)
    csr = engine_harness.current_substrate_csr(lazy)
    edges = [(u, int(v)) for u in range(8) for v in csr.neighbors(u) if u < int(v)]
    if not edges:
        return
    engine_harness.remove_edge(lazy, *edges[0])
    assert lazy.epoch != seen
    with pytest.raises(StaleDistanceError):
        lazy.ensure_epoch(seen)


def test_lazy_rejects_unknown_rows_mode(engine_harness):
    g = OwnedDigraph(3)
    g.add_arc(0, 1)
    with pytest.raises(GraphError):
        engine_harness.build(g.undirected_csr(), rows="eager")
