"""Tests for the async batched query server (:mod:`repro.serve`).

The contract under test throughout is *bit-identity*: every served
answer — including disconnected-pair ``Cinf`` sentinels and exact
PoA fractions — must equal the corresponding direct library call on
the same instance, regardless of batching, concurrency, or how the
instance's distance cache was cold-started.
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.analysis.poa import optimal_diameter_bounds, poa_interval
from repro.analysis.weighted import WeightedRealization, weighted_swap_check
from repro.cli import build_construction, main
from repro.core import DistanceCache, social_cost
from repro.core.best_response import exact_best_response
from repro.core.costs import Version
from repro.core.deviations import deviation_improves
from repro.core.pool_store import PoolStore, census_graph_digest
from repro.graphs import DistanceEngine
from repro.graphs.digraph import OwnedDigraph
from repro.graphs.distances import cinf
from repro.serve import (
    InstanceRegistry,
    ProtocolError,
    QueryServer,
    error_response,
    fraction_str,
    ok_response,
    parse_request,
)


# ----------------------------------------------------------------------
# Helpers: run a server + client conversation inside asyncio.run
# ----------------------------------------------------------------------
async def _rpc(reader, writer, requests):
    """Send request dicts as NDJSON, collect responses keyed by id."""
    writer.write(b"".join(json.dumps(r).encode() + b"\n" for r in requests))
    await writer.drain()
    got = {}
    for _ in requests:
        line = await asyncio.wait_for(reader.readline(), 60)
        resp = json.loads(line)
        got[resp["id"]] = resp
    return got


def _serve(registry_or_graphs, conversation, **server_kwargs):
    """Boot a TCP server, run ``conversation(reader, writer)``, tear down."""
    async def run():
        if isinstance(registry_or_graphs, InstanceRegistry):
            registry = registry_or_graphs
        else:
            registry = InstanceRegistry.from_graphs(registry_or_graphs)
        server = QueryServer(registry, **server_kwargs)
        host, port = await server.start()
        reader, writer = await asyncio.open_connection(host, port)
        try:
            return await conversation(reader, writer)
        finally:
            writer.close()
            await server.stop()

    return asyncio.run(run())


def _fig1():
    return build_construction("fig1")


# ----------------------------------------------------------------------
# Protocol parsing
# ----------------------------------------------------------------------
def test_parse_request_roundtrip():
    req = parse_request('{"id": 3, "op": "distance", "u": 1, "v": 2, "version": "max"}')
    assert req.id == 3 and req.op == "distance" and req.version == "max"
    assert req.params == {"u": 1, "v": 2}
    assert req.instance is None


@pytest.mark.parametrize(
    "line, code",
    [
        ("not json at all", "bad-json"),
        ("[1, 2]", "bad-request"),
        ('{"id": 1}', "bad-request"),
        ('{"op": 7}', "bad-request"),
        ('{"op": "frobnicate"}', "unknown-op"),
        ('{"op": "ping", "instance": 3}', "bad-request"),
        ('{"op": "ping", "version": 3}', "bad-request"),
    ],
)
def test_parse_request_rejects(line, code):
    with pytest.raises(ProtocolError) as exc:
        parse_request(line)
    assert exc.value.code == code


def test_response_envelopes():
    ok = ok_response(5, {"x": 1}, {"batch_size": 2})
    assert ok == {"id": 5, "ok": True, "result": {"x": 1}, "meta": {"batch_size": 2}}
    err = error_response(None, "bad-request", "nope")
    assert err["ok"] is False and err["error"]["code"] == "bad-request"


# ----------------------------------------------------------------------
# Bit-identity of every query op under concurrency
# ----------------------------------------------------------------------
def test_concurrent_mixed_queries_bit_identical():
    g = _fig1()
    owner = int(np.argmax(g.out_degrees()))
    nbrs = [int(x) for x in g.out_neighbors(owner)]
    drop = nbrs[0]
    add = next(x for x in range(g.n) if x != owner and x not in nbrs)
    rng = np.random.default_rng(7)
    pairs = [(int(u), int(v)) for u, v in rng.integers(0, g.n, size=(8, 2))]

    async def conversation(reader, writer):
        reqs = [
            {"id": f"d{i}", "op": "distance", "u": u, "v": v}
            for i, (u, v) in enumerate(pairs)
        ]
        reqs += [
            {"id": f"w{i}", "op": "distance", "u": u, "v": v, "weighted": True}
            for i, (u, v) in enumerate(pairs[:4])
        ]
        reqs += [
            {"id": "sc", "op": "social_cost"},
            {"id": "br", "op": "best_response", "u": 2},
            {"id": "brmax", "op": "best_response", "u": 2, "version": "max"},
            {"id": "dev", "op": "deviation", "u": owner, "strategy": [drop]},
            {"id": "swap", "op": "weighted_swap", "u": owner, "drop": drop, "add": add},
            {"id": "poa", "op": "poa", "worst_diameter": 6},
        ]
        return await _rpc(reader, writer, reqs)

    got = _serve({"fig1": g}, conversation, window=0.05)

    cache = DistanceCache(g, rows="lazy")
    for i, (u, v) in enumerate(pairs):
        assert got[f"d{i}"]["result"]["distance"] == cache.query(u, v)
    for i, (u, v) in enumerate(pairs[:4]):
        assert got[f"w{i}"]["result"]["distance"] == cache.query(u, v)
    assert got["sc"]["result"]["social_cost"] == social_cost(g)
    for rid, version in (("br", "sum"), ("brmax", "max")):
        direct = exact_best_response(g, 2, Version.coerce(version))
        served = got[rid]["result"]
        assert served["cost"] == direct.cost
        assert served["current_cost"] == direct.current_cost
        assert served["strategy"] == [int(x) for x in direct.strategy]
        assert served["evaluated"] == direct.evaluated
        assert served["exact"] == direct.exact
    assert got["dev"]["result"]["improves"] == deviation_improves(
        g, owner, [drop], Version.coerce("sum")
    )
    wr = WeightedRealization.unit(g)
    assert got["swap"]["result"]["improves"] == weighted_swap_check(
        wr, owner, drop, add
    )
    budgets = [int(d) for d in g.out_degrees()]
    lo, hi = poa_interval(6, budgets)
    bounds = optimal_diameter_bounds(budgets)
    assert got["poa"]["result"]["interval"] == [fraction_str(lo), fraction_str(hi)]
    assert got["poa"]["result"]["diameter_bounds"] == {
        "lower": bounds.lower,
        "upper": bounds.upper,
    }
    # Every query response carries the observability envelope.
    meta = got["d0"]["meta"]
    assert {"queue_wait_ms", "batch_size", "settled_fraction", "engine_mode"} <= set(meta)
    assert meta["batch_size"] >= 2


def test_disconnected_pair_serves_cinf_sentinel():
    # Vertex 3 is isolated: the served distance must be the exact Cinf
    # sentinel the direct library call returns, not an approximation.
    g = OwnedDigraph.from_strategies([[1], [2], [0], []])

    async def conversation(reader, writer):
        return await _rpc(
            reader,
            writer,
            [
                {"id": 1, "op": "distance", "u": 0, "v": 3},
                {"id": 2, "op": "distance", "u": 3, "v": 1},
                {"id": 3, "op": "distance", "u": 0, "v": 2},
            ],
        )

    got = _serve({"ring+iso": g}, conversation, window=0.05)
    cache = DistanceCache(g, rows="lazy")
    assert got[1]["result"]["distance"] == cache.query(0, 3) == cinf(g.n)
    assert got[2]["result"]["distance"] == cache.query(3, 1) == cinf(g.n)
    assert got[3]["result"]["distance"] == cache.query(0, 2)


# ----------------------------------------------------------------------
# Micro-batching: concurrent same-instance requests share one sweep
# ----------------------------------------------------------------------
def test_concurrent_requests_coalesce_into_one_sweep():
    g = _fig1()

    async def conversation(reader, writer):
        reqs = [
            {"id": i, "op": "distance", "u": i % g.n, "v": (3 * i + 1) % g.n}
            for i in range(6)
        ]
        answers = await _rpc(reader, writer, reqs)
        stats = (await _rpc(reader, writer, [{"id": "s", "op": "stats"}]))["s"]
        return answers, stats["result"]["dispatcher"]

    answers, stats = _serve({"fig1": g}, conversation, window=0.1)
    cache = DistanceCache(g, rows="lazy")
    for i in range(6):
        assert answers[i]["result"]["distance"] == cache.query(i % g.n, (3 * i + 1) % g.n)
    # All six arrived inside the window: one batch, one batched sweep.
    assert stats["max_batch"] >= 2
    assert stats["batched_requests"] >= 2
    assert stats["sweeps"] >= 1
    assert stats["requests"] == 6
    assert stats["errors"] == 0
    assert stats["instances"]["fig1"]["sweeps"] == stats["sweeps"]


def test_sequential_requests_still_bit_identical():
    g = _fig1()

    async def conversation(reader, writer):
        got = {}
        for i in range(4):
            got.update(
                await _rpc(
                    reader, writer, [{"id": i, "op": "distance", "u": 0, "v": 5 + i}]
                )
            )
        return got

    got = _serve({"fig1": g}, conversation, window=0.001)
    cache = DistanceCache(g, rows="lazy")
    for i in range(4):
        assert got[i]["result"]["distance"] == cache.query(0, 5 + i)
        assert got[i]["meta"]["batch_size"] == 1


# ----------------------------------------------------------------------
# Pool-dir cold start: attach the persisted matrix, zero rebuilds
# ----------------------------------------------------------------------
def test_pool_dir_cold_start_attaches_without_rebuild(tmp_path):
    g = _fig1()
    engine = DistanceEngine(g.undirected_csr())
    store = PoolStore(str(tmp_path))
    store.publish(
        census_graph_digest(g),
        {"D": engine.matrix, "inf": np.asarray([engine.inf], dtype=np.int64)},
    )

    registry = InstanceRegistry.from_graphs({"fig1": g}, pool_dir=str(tmp_path))
    inst = registry.get("fig1")
    assert inst.source == "disk"
    info = inst.info()
    assert info["engine_mode"] == "full"
    assert info["rebuilds"] == 0  # attached, never rebuilt

    async def conversation(reader, writer):
        got = await _rpc(
            reader,
            writer,
            [
                {"id": 1, "op": "distance", "u": 0, "v": 9},
                {"id": 2, "op": "distance", "u": 3, "v": 17},
                {"id": "i", "op": "instances"},
            ],
        )
        return got

    got = _serve(registry, conversation, window=0.05)
    cache = DistanceCache(g, rows="lazy")
    assert got[1]["result"]["distance"] == cache.query(0, 9)
    assert got[2]["result"]["distance"] == cache.query(3, 17)
    (served,) = got["i"]["result"]["instances"]
    assert served["source"] == "disk" and served["rebuilds"] == 0
    assert got[1]["meta"]["engine_mode"] == "full"
    assert got[1]["meta"]["settled_fraction"] == 1.0


def test_cold_start_without_pool_dir_is_lazy():
    registry = InstanceRegistry.from_graphs({"fig1": _fig1()})
    inst = registry.get("fig1")
    assert inst.source == "lazy"
    assert inst.info()["engine_mode"] == "lazy"


# ----------------------------------------------------------------------
# Control ops, errors, multi-instance routing
# ----------------------------------------------------------------------
def test_control_ops_and_error_paths():
    g = _fig1()

    async def conversation(reader, writer):
        got = await _rpc(
            reader,
            writer,
            [
                {"id": 1, "op": "ping"},
                {"id": 2, "op": "instances"},
                {"id": 3, "op": "distance", "u": 0, "v": 10**6},
                {"id": 4, "op": "distance", "u": 0},
                {"id": 5, "op": "distance", "u": 0, "v": 1, "instance": "nope"},
                {"id": 6, "op": "deviation", "u": 0, "strategy": "not-a-list"},
                {"id": 7, "op": "best_response", "u": 1, "version": "bogus"},
                {"id": 8, "op": "stats"},
            ],
        )
        writer.write(b"this is not json\n")
        await writer.drain()
        got["garbage"] = json.loads(await asyncio.wait_for(reader.readline(), 60))
        return got

    got = _serve({"fig1": g}, conversation, window=0.02)
    assert got[1]["result"] == {"pong": True, "protocol": 1}
    assert got[2]["result"]["default"] == "fig1"
    assert got[3]["ok"] is False and got[3]["error"]["code"] == "bad-request"
    assert got[4]["ok"] is False and got[4]["error"]["code"] == "bad-request"
    assert got[5]["ok"] is False and got[5]["error"]["code"] == "unknown-instance"
    assert got[6]["ok"] is False and got[6]["error"]["code"] == "bad-request"
    assert got[7]["ok"] is False and got[7]["error"]["code"] == "query-error"
    assert "census" in got[8]["result"]
    assert set(got[8]["result"]["census"]["pool"]) == {
        "shards",
        "warm_attached",
        "disk_attached",
        "parent_builds",
    }
    assert got["garbage"]["ok"] is False
    assert got["garbage"]["error"]["code"] == "bad-json"
    assert got["garbage"]["id"] is None


def test_multiple_instances_route_independently():
    g1 = _fig1()
    g2 = OwnedDigraph.from_strategies([[1], [2], [3], [0]])

    async def conversation(reader, writer):
        return await _rpc(
            reader,
            writer,
            [
                {"id": 1, "op": "distance", "u": 0, "v": 9, "instance": "big"},
                {"id": 2, "op": "distance", "u": 0, "v": 2, "instance": "ring"},
                {"id": 3, "op": "social_cost", "instance": "ring"},
            ],
        )

    got = _serve({"big": g1, "ring": g2}, conversation, window=0.05)
    assert got[1]["result"]["distance"] == DistanceCache(g1, rows="lazy").query(0, 9)
    assert got[2]["result"]["distance"] == DistanceCache(g2, rows="lazy").query(0, 2)
    assert got[3]["result"]["social_cost"] == social_cost(g2)


def test_shutdown_op_stops_server():
    async def run():
        registry = InstanceRegistry.from_graphs({"fig1": _fig1()})
        server = QueryServer(registry, window=0.01)
        host, port = await server.start()
        reader, writer = await asyncio.open_connection(host, port)
        got = await _rpc(reader, writer, [{"id": 1, "op": "shutdown"}])
        assert got[1]["result"] == {"stopping": True}
        writer.close()
        await asyncio.wait_for(server.serve_until_shutdown(), 30)

    asyncio.run(run())


# ----------------------------------------------------------------------
# Registry spec parsing + CLI entry points
# ----------------------------------------------------------------------
def test_registry_from_specs_naming():
    registry = InstanceRegistry.from_specs(["fig1", "web=spider:3"])
    assert registry.names() == ["fig1", "web"]
    assert registry.default == "fig1"
    assert registry.get(None).name == "fig1"
    assert registry.get("web").graph.n == build_construction("spider:3").n


def test_registry_rejects_bad_specs():
    from repro.errors import ExperimentError

    with pytest.raises(ExperimentError):
        InstanceRegistry.from_specs(["fig1", "fig1"])  # duplicate name
    with pytest.raises(ExperimentError):
        InstanceRegistry.from_specs(["=fig1"])  # empty name
    with pytest.raises(ExperimentError):
        InstanceRegistry.from_specs([])


def test_cli_serve_bad_instance_exits_1(capsys):
    assert main(["serve", "--instance", "no-such-construction"]) == 1
    assert "!! serve failed" in capsys.readouterr().err


def test_cli_serve_stdio_roundtrip():
    g = _fig1()
    requests = "".join(
        json.dumps(r) + "\n"
        for r in [
            {"id": 1, "op": "ping"},
            {"id": 2, "op": "distance", "u": 0, "v": 9},
            {"id": 3, "op": "distance", "u": 3, "v": 17},
            {"id": 4, "op": "shutdown"},
        ]
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "--stdio", "--batch-window-ms", "20"],
        input=requests,
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    assert proc.returncode == 0, proc.stderr
    got = {}
    for line in proc.stdout.strip().splitlines():
        resp = json.loads(line)
        got[resp["id"]] = resp
    cache = DistanceCache(g, rows="lazy")
    assert got[1]["result"]["pong"] is True
    assert got[2]["result"]["distance"] == cache.query(0, 9)
    assert got[3]["result"]["distance"] == cache.query(3, 17)
    assert got[4]["result"] == {"stopping": True}
