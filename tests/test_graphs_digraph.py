"""Unit tests for OwnedDigraph (ownership semantics and caching)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ArcError, GraphError, VertexError
from repro.graphs import OwnedDigraph


def test_empty_graph_properties():
    g = OwnedDigraph(4)
    assert g.n == 4
    assert g.num_arcs == 0
    assert g.out_degrees().tolist() == [0, 0, 0, 0]
    assert list(g.arcs()) == []


def test_invalid_size():
    with pytest.raises(GraphError):
        OwnedDigraph(0)


def test_add_and_query_arcs():
    g = OwnedDigraph(3)
    g.add_arc(0, 1)
    g.add_arc(0, 2)
    assert g.has_arc(0, 1)
    assert not g.has_arc(1, 0)
    assert g.out_neighbors(0).tolist() == [1, 2]
    assert g.out_degree(0) == 2
    assert g.in_neighbors(1).tolist() == [0]


def test_self_loop_rejected():
    g = OwnedDigraph(3)
    with pytest.raises(ArcError):
        g.add_arc(1, 1)


def test_duplicate_arc_rejected():
    g = OwnedDigraph(3)
    g.add_arc(0, 1)
    with pytest.raises(ArcError):
        g.add_arc(0, 1)


def test_remove_arc():
    g = OwnedDigraph(3)
    g.add_arc(0, 1)
    g.remove_arc(0, 1)
    assert not g.has_arc(0, 1)
    with pytest.raises(ArcError):
        g.remove_arc(0, 1)


def test_vertex_range_checks():
    g = OwnedDigraph(3)
    with pytest.raises(VertexError):
        g.add_arc(0, 3)
    with pytest.raises(VertexError):
        g.out_neighbors(-1)


def test_braces_detection():
    g = OwnedDigraph(4)
    g.add_arc(0, 1)
    g.add_arc(1, 0)
    g.add_arc(2, 3)
    assert g.braces() == [(0, 1)]


def test_neighbors_union_of_in_and_out():
    g = OwnedDigraph(4)
    g.add_arc(0, 1)
    g.add_arc(2, 0)
    assert g.neighbors(0).tolist() == [1, 2]
    assert g.degree(0) == 2


def test_brace_counts_once_in_undirected_degree():
    g = OwnedDigraph(2)
    g.add_arc(0, 1)
    g.add_arc(1, 0)
    assert g.degree(0) == 1
    assert g.underlying_edges() == [(0, 1)]


def test_set_strategy_replaces_out_set():
    g = OwnedDigraph(5)
    g.add_arc(0, 1)
    g.set_strategy(0, [2, 3])
    assert g.out_neighbors(0).tolist() == [2, 3]


def test_set_strategy_validation():
    g = OwnedDigraph(4)
    with pytest.raises(ArcError):
        g.set_strategy(0, [0])
    with pytest.raises(ArcError):
        g.set_strategy(0, [1, 1])
    with pytest.raises(VertexError):
        g.set_strategy(0, [9])


def test_from_strategies_and_profile_key():
    g = OwnedDigraph.from_strategies([{1}, {2}, {0}])
    assert g.profile_key() == ((1,), (2,), (0,))
    g2 = OwnedDigraph.from_arcs(3, [(0, 1), (1, 2), (2, 0)])
    assert g == g2


def test_copy_is_deep():
    g = OwnedDigraph(3)
    g.add_arc(0, 1)
    h = g.copy()
    h.add_arc(1, 2)
    assert not g.has_arc(1, 2)
    assert h.has_arc(0, 1)


def test_csr_cache_invalidation():
    g = OwnedDigraph(3)
    g.add_arc(0, 1)
    csr1 = g.undirected_csr()
    assert csr1.has_edge(0, 1)
    g.add_arc(1, 2)
    csr2 = g.undirected_csr()
    assert csr2.has_edge(1, 2)
    # Cached object must have been rebuilt after mutation.
    assert csr1 is not csr2


def test_csr_without_cache():
    g = OwnedDigraph.from_arcs(4, [(0, 1), (1, 2), (2, 3)])
    a = g.undirected_csr_without(1)
    b = g.undirected_csr_without(1)
    assert a is b  # cached
    assert a.neighbors(1).size == 0
    assert a.has_edge(2, 3)
    g.remove_arc(2, 3)
    c = g.undirected_csr_without(1)
    assert not c.has_edge(2, 3)


def test_to_networkx_roundtrip():
    g = OwnedDigraph.from_arcs(4, [(0, 1), (2, 3), (3, 0)])
    G = g.to_networkx()
    assert set(G.edges()) == {(0, 1), (2, 3), (3, 0)}
    assert G.number_of_nodes() == 4


def test_repr_smoke():
    g = OwnedDigraph(3)
    assert "OwnedDigraph" in repr(g)
