"""Golden equivalence: engine-backed Section 6 machinery vs loop path.

Every fixture exercised by ``test_analysis_weighted.py`` and
``test_section6_checkers.py`` — dynamics-converged equilibria, stars,
paths, fold cascades, Lemma 6.4 graphs — is re-run here through a
:class:`WeightedDistanceCache`, and every verdict, cost, fold sequence
and report must be *bit-identical* to the retained loop path. The
weighted census gets the same treatment: incremental Gray-walk vs
rebuild-per-profile reference vs sharded workers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.weighted import (
    WeightedRealization,
    _weighted_swap_improves,
    check_lemma_6_4,
    fold_all_poor_leaves,
    fold_poor_leaf,
    is_weighted_weak_equilibrium,
    poor_leaves,
    rich_leaves,
    weighted_sum_cost,
)
from repro.core import (
    BoundedBudgetGame,
    WeightedDistanceCache,
    best_response_dynamics,
    weighted_census_scan,
)
from repro.errors import GraphError
from repro.graphs import OwnedDigraph, path_realization, star_realization


def both_paths(wr: WeightedRealization):
    """A fresh cache bound to ``wr.graph`` for the engine path."""
    return WeightedDistanceCache(wr.graph)


def assert_checkers_identical(wr: WeightedRealization) -> None:
    """Every public checker answers the same with and without engines."""
    cache = both_paths(wr)
    for u in range(wr.graph.n):
        assert weighted_sum_cost(wr, u) == weighted_sum_cost(wr, u, cache=cache)
        assert _weighted_swap_improves(wr, u) == _weighted_swap_improves(
            wr, u, cache=cache
        ), u
    assert is_weighted_weak_equilibrium(wr) == is_weighted_weak_equilibrium(
        wr, cache=cache
    )
    assert check_lemma_6_4(wr) == check_lemma_6_4(wr, cache=cache)


# ----------------------------------------------------------------------
# Fixtures from test_analysis_weighted.py
# ----------------------------------------------------------------------
def test_path_fixture_bit_identical():
    for n in (3, 6):
        assert_checkers_identical(WeightedRealization.unit(path_realization(n)))


def test_scaled_weights_fixture_bit_identical():
    g = path_realization(3)
    wr = WeightedRealization(graph=g.copy(), weights=np.array([1, 1, 10]))
    assert_checkers_identical(wr)
    cache = both_paths(wr)
    assert weighted_sum_cost(wr, 0, cache=cache) == 21


def test_leaf_classification_fixture_bit_identical():
    g = OwnedDigraph(3)
    g.add_arc(0, 1)
    g.add_arc(2, 0)
    wr = WeightedRealization.unit(g)
    assert poor_leaves(wr) == [1]
    assert rich_leaves(wr) == [2]
    assert_checkers_identical(wr)


def test_fold_poor_leaf_engine_path_matches_reference():
    g = OwnedDigraph(4)
    g.add_arc(0, 1)
    g.add_arc(0, 2)
    g.add_arc(3, 0)
    wr = WeightedRealization.unit(g)
    cache = both_paths(wr)
    ref = fold_poor_leaf(wr, 1)
    eng = fold_poor_leaf(wr, 1, cache=cache)
    assert ref.graph == eng.graph
    assert ref.weights.tolist() == eng.weights.tolist() == [2, 0, 1, 1]
    # The cache now tracks the folded working copy.
    assert cache.graph is eng.graph
    assert is_weighted_weak_equilibrium(eng, cache=cache) == is_weighted_weak_equilibrium(ref)
    # Originals untouched on both paths.
    assert wr.weights.tolist() == [1, 1, 1, 1]
    assert wr.graph.has_arc(0, 1)


def test_fold_rejects_non_poor_vertices_both_paths():
    g = path_realization(4)
    wr = WeightedRealization.unit(g)
    cache = both_paths(wr)
    with pytest.raises(GraphError):
        fold_poor_leaf(wr, 1)
    with pytest.raises(GraphError):
        fold_poor_leaf(wr, 1, cache=cache)


def test_star_fold_all_engine_path_matches_reference():
    g = star_realization(6, 0, center_owns=True)
    wr = WeightedRealization.unit(g)
    cache = both_paths(wr)
    ref = fold_all_poor_leaves(wr)
    eng = fold_all_poor_leaves(wr, cache=cache)
    assert ref.graph == eng.graph
    assert ref.weights.tolist() == eng.weights.tolist()
    assert eng.weights[0] == 6
    assert poor_leaves(eng) == []


def test_folding_preserves_weak_equilibrium_engine_path():
    # The dynamics-converged fixture of test_analysis_weighted, folded
    # step by step with cached verification after every fold; fold
    # sequence and verdicts must match the loop path exactly.
    game = BoundedBudgetGame([1, 1, 1, 1, 2, 0, 0])
    res = best_response_dynamics(
        game, game.random_realization(seed=2, connected=True), "sum", max_rounds=100
    )
    assert res.converged
    wr_ref = WeightedRealization.unit(res.graph)
    wr_eng = WeightedRealization.unit(res.graph)
    cache = both_paths(wr_eng)
    assert is_weighted_weak_equilibrium(wr_eng, cache=cache)
    while poor_leaves(wr_ref):
        leaf_ref = poor_leaves(wr_ref)[0]
        leaf_eng = poor_leaves(wr_eng)[0]
        assert leaf_ref == leaf_eng
        wr_ref = fold_poor_leaf(wr_ref, leaf_ref)
        wr_eng = fold_poor_leaf(wr_eng, leaf_eng, cache=cache)
        assert wr_ref.graph == wr_eng.graph
        assert wr_ref.weights.tolist() == wr_eng.weights.tolist()
        ref_verdict = is_weighted_weak_equilibrium(wr_ref)
        assert is_weighted_weak_equilibrium(wr_eng, cache=cache) == ref_verdict
        assert ref_verdict, "folding broke weak equilibrium"


def test_lemma_6_4_on_equilibria_engine_path():
    for seed in range(4):
        game = BoundedBudgetGame([1] * 9)
        res = best_response_dynamics(
            game, game.random_realization(seed=seed), "sum", max_rounds=100
        )
        assert res.converged
        wr = WeightedRealization.unit(res.graph)
        cache = both_paths(wr)
        ref = check_lemma_6_4(wr)
        eng = check_lemma_6_4(wr, cache=cache)
        assert ref == eng
        assert eng.holds, (seed, eng)


def test_lemma_6_4_violated_on_non_equilibrium_engine_path():
    g_rev = OwnedDigraph(6)
    g_rev.add_arc(0, 1)
    g_rev.add_arc(5, 4)
    for i in range(1, 4):
        g_rev.add_arc(i, i + 1)
    wr = WeightedRealization.unit(g_rev)
    cache = both_paths(wr)
    ref = check_lemma_6_4(wr)
    eng = check_lemma_6_4(wr, cache=cache)
    assert ref == eng
    assert not eng.holds
    assert not is_weighted_weak_equilibrium(wr, cache=cache)


def test_disconnected_fixture_bit_identical():
    # Cross-component terms must hit the same Cinf on both paths.
    g = OwnedDigraph(5)
    g.add_arc(0, 1)
    g.add_arc(2, 3)
    wr = WeightedRealization(graph=g, weights=np.array([1, 2, 3, 4, 5]))
    assert_checkers_identical(wr)
    cache = both_paths(wr)
    assert weighted_sum_cost(wr, 0, cache=cache) == weighted_sum_cost(wr, 0)


def test_weight_zero_ghosts_bit_identical():
    g = path_realization(5)
    wr = WeightedRealization(graph=g.copy(), weights=np.array([1, 0, 2, 0, 3]))
    assert_checkers_identical(wr)


# ----------------------------------------------------------------------
# Weighted census golden
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "budgets,weights",
    [
        ((1, 1, 1), (1, 2, 3)),
        ((1, 1, 1, 1), (5, 1, 1, 1)),
        ((2, 1, 1, 0), (3, 1, 1, 1)),
        ((1, 1, 1, 0), (2, 1, 1, 0)),
    ],
)
def test_weighted_census_incremental_equals_reference(budgets, weights):
    game = BoundedBudgetGame(list(budgets))
    ref, eq_ref = weighted_census_scan(
        game, weights, incremental=False, collect_equilibria=True
    )
    inc, eq_inc = weighted_census_scan(game, weights, collect_equilibria=True)
    assert inc == ref
    assert eq_inc == eq_ref
    for workers in (2, 3):
        sharded, eq_sharded = weighted_census_scan(
            game, weights, workers=workers, collect_equilibria=True
        )
        assert sharded == ref
        assert eq_sharded == eq_ref


def test_weighted_census_unit_weights_contain_nash_equilibria():
    # With all-ones weights every (SUM) Nash equilibrium is in
    # particular stable under weighted single-arc swaps.
    from repro.core import enumerate_equilibria

    game = BoundedBudgetGame([1, 1, 1, 1])
    report, eqs = weighted_census_scan(game, (1, 1, 1, 1), collect_equilibria=True)
    nash = {g.profile_key() for g in enumerate_equilibria(game, "sum")}
    assert nash <= set(eqs)
    assert report.num_weak_equilibria >= len(nash)


def test_weighted_census_validates_inputs():
    from repro.errors import GameError

    game = BoundedBudgetGame([1, 1, 1])
    with pytest.raises(GameError):
        weighted_census_scan(game, (1, 2))  # wrong length
    with pytest.raises(GameError):
        weighted_census_scan(game, (1, -1, 2))
    with pytest.raises(GameError):
        weighted_census_scan(game, (1, 1, 1), workers=0)
    with pytest.raises(GameError):
        weighted_census_scan(game, (1, 1, 1), incremental=False, workers=2)


def test_weighted_experiment_rows():
    from repro.experiments.exact_census import (
        DEFAULT_INSTANCES,
        WEIGHTED_INSTANCES,
        exact_census_experiment,
    )

    report = exact_census_experiment(
        instances=DEFAULT_INSTANCES[:1], weighted=True
    )
    weighted_rows = [r for r in report.rows if r["version"] == "sum/weak"]
    assert len(weighted_rows) == len(WEIGHTED_INSTANCES)
    for row in weighted_rows:
        assert row["profiles"] > 0
        assert row["equilibria"] >= 0
