"""Tests for k-center / k-median solvers and the Theorem 2.1 reductions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import OptimizationError
from repro.graphs import build_csr, distance_matrix, path_realization
from repro.optimization import (
    best_response_via_k_center,
    best_response_via_k_median,
    embed_graph_with_new_player,
    exact_k_center,
    exact_k_median,
    greedy_k_center,
    k_center_value,
    k_center_via_best_response,
    k_median_value,
    k_median_via_best_response,
    local_search_k_median,
)

from conftest import random_owned_digraph


def _random_connected_csr(rng, n, p=0.35):
    import networkx as nx

    while True:
        G = nx.gnp_random_graph(n, p, seed=int(rng.integers(1 << 30)))
        if nx.is_connected(G):
            edges = list(G.edges())
            heads = np.array([u for u, _ in edges], dtype=np.int64)
            tails = np.array([v for _, v in edges], dtype=np.int64)
            return build_csr(n, heads, tails)


def test_path_k_center():
    D = distance_matrix(path_realization(7), apply_cinf=False)
    sol = exact_k_center(D, 1)
    assert sol.objective == 3  # middle of a 7-path
    assert sol.centers == (3,)
    sol2 = exact_k_center(D, 2)
    # Two centers split a 7-path into halves, one of size >= 4: radius 2.
    assert sol2.objective == 2
    assert k_center_value(D, sol2.centers) == sol2.objective


def test_path_k_median():
    D = distance_matrix(path_realization(5), apply_cinf=False)
    sol = exact_k_median(D, 1)
    assert sol.medians == (2,)
    assert sol.objective == 6
    sol2 = exact_k_median(D, 5)
    assert sol2.objective == 0


def test_objective_helpers():
    D = distance_matrix(path_realization(4), apply_cinf=False)
    assert k_center_value(D, [0]) == 3
    assert k_median_value(D, [0]) == 6
    with pytest.raises(OptimizationError):
        k_center_value(D, [])
    with pytest.raises(OptimizationError):
        k_median_value(D, [])


def test_input_validation():
    D = np.zeros((3, 4))
    with pytest.raises(OptimizationError):
        exact_k_center(D, 1)
    sq = np.zeros((3, 3))
    with pytest.raises(OptimizationError):
        exact_k_center(sq, 0)
    with pytest.raises(OptimizationError):
        exact_k_median(sq, 4)
    with pytest.raises(OptimizationError):
        greedy_k_center(sq, 1, first=5)


def test_candidate_caps():
    D = np.zeros((30, 30))
    with pytest.raises(OptimizationError):
        exact_k_center(D, 15, max_candidates=100)
    with pytest.raises(OptimizationError):
        exact_k_median(D, 15, max_candidates=100)


def test_greedy_k_center_2_approximation(rng):
    for _ in range(8):
        csr = _random_connected_csr(rng, int(rng.integers(5, 12)))
        D = distance_matrix(csr, apply_cinf=False)
        for k in (1, 2, 3):
            opt = exact_k_center(D, k)
            apx = greedy_k_center(D, k)
            assert opt.objective <= apx.objective <= 2 * opt.objective
            assert len(set(apx.centers)) == k


def test_local_search_k_median_quality(rng):
    for _ in range(8):
        csr = _random_connected_csr(rng, int(rng.integers(5, 11)))
        D = distance_matrix(csr, apply_cinf=False)
        for k in (1, 2):
            opt = exact_k_median(D, k)
            apx = local_search_k_median(D, k)
            assert opt.objective <= apx.objective <= 5 * opt.objective


def test_local_search_initial_validation():
    D = np.zeros((4, 4))
    with pytest.raises(OptimizationError):
        local_search_k_median(D, 2, initial=(0, 0))
    with pytest.raises(OptimizationError):
        local_search_k_median(D, 2, initial=(0, 9))


def test_embedding_shape():
    csr = build_csr(4, np.array([0, 1, 2]), np.array([1, 2, 3]))
    inst = embed_graph_with_new_player(csr, 2)
    assert inst.game_graph.n == 5
    assert inst.new_player == 4
    assert inst.game_graph.out_degree(4) == 2
    assert inst.game_graph.in_neighbors(4).size == 0
    # Original graph structure preserved.
    assert inst.game_graph.underlying_edges()[:3] == [(0, 1), (0, 4), (1, 2)]


def test_embedding_from_edge_list():
    inst = embed_graph_with_new_player([(0, 1), (1, 2)], 1)
    assert inst.game_graph.n == 4


def test_embedding_budget_validation():
    with pytest.raises(OptimizationError):
        embed_graph_with_new_player([(0, 1)], 0)
    with pytest.raises(OptimizationError):
        embed_graph_with_new_player([(0, 1)], 3)


def test_reduction_equivalence_k_center(rng):
    # Hardness direction: game best response solves k-center.
    for _ in range(6):
        csr = _random_connected_csr(rng, int(rng.integers(5, 10)))
        D = distance_matrix(csr, apply_cinf=False)
        for k in (1, 2):
            direct = exact_k_center(D, k)
            via_game = k_center_via_best_response(csr, k)
            assert direct.objective == via_game.objective
            assert k_center_value(D, via_game.centers) == direct.objective


def test_reduction_equivalence_k_median(rng):
    for _ in range(6):
        csr = _random_connected_csr(rng, int(rng.integers(5, 10)))
        D = distance_matrix(csr, apply_cinf=False)
        for k in (1, 2):
            direct = exact_k_median(D, k)
            via_game = k_median_via_best_response(csr, k)
            assert direct.objective == via_game.objective
            assert k_median_value(D, via_game.medians) == direct.objective


def test_algorithmic_direction(rng):
    # Solving a player's best response through the location solvers.
    from repro.core import exact_best_response
    from repro.graphs import OwnedDigraph

    g = OwnedDigraph(6)
    # Ring among 0..4; player 5 owns 2 arcs, has none incoming.
    for i in range(5):
        g.add_arc(i, (i + 1) % 5)
    g.add_arc(5, 0)
    g.add_arc(5, 1)
    c_max, s_max = best_response_via_k_center(g, 5)
    c_sum, s_sum = best_response_via_k_median(g, 5)
    r_max = exact_best_response(g, 5, "max")
    r_sum = exact_best_response(g, 5, "sum")
    assert c_max == r_max.cost
    assert c_sum == r_sum.cost


def test_algorithmic_direction_preconditions():
    from repro.graphs import OwnedDigraph

    g = OwnedDigraph(3)
    g.add_arc(0, 1)
    g.add_arc(1, 2)
    g.add_arc(2, 0)
    # Player 0 has an incoming arc: reduction refuses.
    with pytest.raises(OptimizationError):
        best_response_via_k_center(g, 0)
