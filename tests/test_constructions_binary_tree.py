"""Tests for the Theorem 3.4 perfect binary tree (SUM, Θ(log n))."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constructions import binary_tree_equilibrium
from repro.core import BoundedBudgetGame, certify_equilibrium, is_equilibrium
from repro.errors import ConstructionError
from repro.graphs import diameter, is_tree


def test_structure():
    inst = binary_tree_equilibrium(3)
    assert inst.n == 15
    assert is_tree(inst.graph)
    assert diameter(inst.graph) == 6
    assert inst.root == 0
    assert inst.leaves().tolist() == list(range(7, 15))


def test_budgets():
    inst = binary_tree_equilibrium(2)
    b = inst.budgets
    assert b.tolist() == [2, 2, 2, 0, 0, 0, 0]
    assert BoundedBudgetGame(b).is_tree_game


@pytest.mark.parametrize("depth", [1, 2, 3, 4])
def test_is_sum_equilibrium(depth):
    inst = binary_tree_equilibrium(depth)
    cert = certify_equilibrium(inst.graph, "sum", method="exact")
    assert cert.is_equilibrium, (depth, cert.summary())


def test_diameter_logarithmic():
    for depth in (2, 3, 4, 5):
        inst = binary_tree_equilibrium(depth)
        assert diameter(inst.graph) == 2 * depth
        assert inst.diameter_value == 2 * depth
        # 2 * depth = 2 * log2((n+1)/2) = Θ(log n).
        assert diameter(inst.graph) <= 2 * np.log2(inst.n + 1)


def test_heap_indexing_arcs():
    inst = binary_tree_equilibrium(2)
    g = inst.graph
    assert g.has_arc(0, 1) and g.has_arc(0, 2)
    assert g.has_arc(1, 3) and g.has_arc(1, 4)
    assert g.has_arc(2, 5) and g.has_arc(2, 6)


def test_invalid_depth():
    with pytest.raises(ConstructionError):
        binary_tree_equilibrium(0)
