"""Property-based tests (hypothesis) for game costs and best responses."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BestResponseEnvironment,
    BoundedBudgetGame,
    Version,
    exact_best_response,
    greedy_best_response,
    swap_best_response,
    vertex_cost,
)
from repro.graphs import OwnedDigraph, cinf
from repro.rng import as_generator


@st.composite
def games_with_realizations(draw, max_n: int = 9, max_budget: int = 2):
    """A random small game and one of its realizations."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    budgets = draw(
        st.lists(
            st.integers(min_value=0, max_value=min(max_budget, n - 1)),
            min_size=n,
            max_size=n,
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**31))
    game = BoundedBudgetGame(budgets)
    graph = game.random_realization(seed=seed)
    return game, graph


@given(games_with_realizations())
@settings(max_examples=50, deadline=None)
def test_cost_bounds(args):
    game, graph = args
    n = game.n
    for version in (Version.SUM, Version.MAX):
        for u in range(n):
            c = vertex_cost(graph, u, version)
            assert c >= 0
            if version is Version.SUM:
                # At most (n-1) Cinf; at least n-1 if connected-ish.
                assert c <= (n - 1) * cinf(n)
            else:
                assert c <= cinf(n) + (n - 1) * cinf(n)


@given(games_with_realizations())
@settings(max_examples=40, deadline=None)
def test_environment_matches_direct_cost(args):
    game, graph = args
    for version in ("sum", "max"):
        for u in range(game.n):
            env = BestResponseEnvironment(graph, u, version)
            cur = tuple(int(v) for v in graph.out_neighbors(u))
            assert env.evaluate(cur) == vertex_cost(graph, u, version)


@given(games_with_realizations(max_n=7))
@settings(max_examples=30, deadline=None)
def test_method_ordering(args):
    """exact <= swap <= current and exact <= greedy <= current costs."""
    game, graph = args
    for version in ("sum", "max"):
        for u in range(game.n):
            ex = exact_best_response(graph, u, version)
            gr = greedy_best_response(graph, u, version)
            sw = swap_best_response(graph, u, version)
            assert ex.cost <= gr.cost <= gr.current_cost
            assert ex.cost <= sw.cost <= sw.current_cost
            assert ex.current_cost == gr.current_cost == sw.current_cost


@given(games_with_realizations(max_n=7))
@settings(max_examples=30, deadline=None)
def test_applying_best_response_achieves_reported_cost(args):
    """The engine's predicted cost must equal the realised cost after
    actually rewiring the graph — the fundamental soundness property."""
    game, graph = args
    for version in ("sum", "max"):
        for u in range(game.n):
            r = exact_best_response(graph, u, version)
            h = graph.copy()
            h.set_strategy(u, r.strategy)
            assert vertex_cost(h, u, version) == r.cost


@given(games_with_realizations(max_n=8))
@settings(max_examples=30, deadline=None)
def test_relabeling_preserves_equilibrium(args):
    """Equilibrium is a graph property: invariant under player relabeling
    (when budgets are permuted accordingly)."""
    from repro.core import is_equilibrium

    game, graph = args
    rng = as_generator(0)
    perm = rng.permutation(game.n)
    h = OwnedDigraph(game.n)
    for u, v in graph.arcs():
        h.add_arc(int(perm[u]), int(perm[v]))
    eq_g = is_equilibrium(graph, "sum")
    eq_h = is_equilibrium(h, "sum")
    assert eq_g == eq_h
