"""Tests for the Section 8 open-problem experiments and CLI export."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    convergence_experiment,
    general_max_experiment,
    uniform_budget_experiment,
)
from repro.experiments.runner import REGISTRY


def test_general_max_small():
    rep = general_max_experiment(ns=(10,), ks=(2, 4), replications=2)
    assert rep.fit is not None
    assert abs(rep.fit.slope - 2 / 3) < 1e-6  # spider: d = 2(n-1)/3
    spiders = [r for r in rep.rows if r["source"] == "spider"]
    assert [r["worst_diameter"] for r in spiders] == [4, 8]


def test_uniform_budget_small():
    rep = uniform_budget_experiment(ns=(8,), Bs=(2,), replications=2)
    assert len(rep.rows) == 2  # sum and max
    for r in rep.rows:
        # Small diameters at these sizes; Thm 7.2 consistent.
        assert r["worst_diameter"] <= 4


def test_convergence_small():
    rep = convergence_experiment(ns=(10,), seeds_per_cell=3)
    dyn_rows = [r for r in rep.rows if r["schedule"] != "(exhaustive FIP)"]
    fip_rows = [r for r in rep.rows if r["schedule"] == "(exhaustive FIP)"]
    assert len(dyn_rows) == 4  # 2 versions x 2 schedules
    for r in dyn_rows:
        assert r["converged"] == "3/3"
        assert r["cycles_found"] == 0
    assert len(fip_rows) == 4  # 2 versions x n in {3, 4}
    assert all(r["converged"] == "proved" for r in fip_rows)


def test_new_experiments_registered():
    assert "T1-MAX-general" in REGISTRY
    assert "OPEN-uniform-B" in REGISTRY
    assert "OPEN-convergence" in REGISTRY


# ----------------------------------------------------------------------
# CLI export
# ----------------------------------------------------------------------
def test_build_construction_specs():
    from repro.cli import build_construction
    from repro.graphs import diameter

    assert build_construction("fig1").n == 22
    assert build_construction("spider:3").n == 10
    assert build_construction("binary-tree:2").n == 7
    assert build_construction("overlap:4,2").n == 16
    g = build_construction("thm2.3:1,1,1,0")
    assert g.n == 4
    assert diameter(g) <= 4


def test_build_construction_errors():
    from repro.cli import build_construction

    with pytest.raises(ExperimentError):
        build_construction("nonsense")
    with pytest.raises(ExperimentError):
        build_construction("spider:notanint")
    with pytest.raises(ExperimentError):
        build_construction("overlap:4")  # missing k


def test_cli_export_roundtrip(tmp_path, capsys):
    from repro.cli import main
    from repro.io import load_realization

    json_path = tmp_path / "g.json"
    dot_path = tmp_path / "g.dot"
    code = main(["export", "binary-tree:2", "--json", str(json_path), "--dot", str(dot_path)])
    assert code == 0
    game, graph = load_realization(json_path)
    assert graph.n == 7
    dot = dot_path.read_text()
    assert "digraph" in dot
    out = capsys.readouterr().out
    assert "n=7" in out


def test_cli_export_prints_table_without_files(capsys):
    from repro.cli import main

    assert main(["export", "spider:2"]) == 0
    out = capsys.readouterr().out
    assert "->" in out


def test_cli_export_bad_spec(capsys):
    from repro.cli import main

    assert main(["export", "bogus:1"]) == 1
    assert "export failed" in capsys.readouterr().err


def test_ablation_best_response_quality():
    from repro.experiments import best_response_quality_experiment

    rep = best_response_quality_experiment(ns=(12,), budgets_of_interest=(2,), trials=2)
    assert len(rep.rows) == 1
    row = rep.rows[0]
    # Heuristics can never beat exact: ratio >= 1.
    assert float(row["greedy/exact cost"]) >= 1.0
    assert float(row["swap/exact cost"]) >= 1.0
    assert row["exact evals"] > row["greedy evals"]


def test_ablation_lemma_shortcut():
    from repro.experiments import lemma_shortcut_experiment

    rep = lemma_shortcut_experiment(sizes=(12,))
    row = rep.rows[0]
    assert row["evals_with_lemma"] <= row["evals_without"]


def test_ablations_registered():
    assert "ABL-BR" in REGISTRY
    assert "ABL-lemma22" in REGISTRY
