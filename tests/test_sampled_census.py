"""Monte Carlo sampled census: determinism, estimators, checkpoints.

The sampled scan must be a *statistical* instrument with *exact*
reproducibility: the same seed yields bit-identical reports at any
worker count or shard decomposition, the stratified and orbit methods
share one rank draw (so their histograms are bit-identical), intervals
cover known exact counts at the sizes where the exhaustive census can
arbitrate, and a full stratified draw degenerates to the exact census.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.enumeration import (
    _gray_digits,
    _gray_rank,
    _profile_tables,
    _sampled_ranks,
    _wilson_interval,
    census_scan,
    profile_space_size,
    sampled_census_scan,
)
from repro.core.game import BoundedBudgetGame
from repro.errors import CheckpointError, GameError
from repro.experiments.exact_census import exact_census_experiment


# ----------------------------------------------------------------------
# Gray-rank inverse
# ----------------------------------------------------------------------
@st.composite
def _budget_vectors(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    return draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1), min_size=n, max_size=n
        )
    )


@settings(max_examples=40, deadline=None)
@given(
    budgets=_budget_vectors(),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_gray_rank_inverts_gray_digits(budgets, seed):
    game = BoundedBudgetGame(budgets)
    _, radices, rests = _profile_tables(game)
    total = profile_space_size(game)
    rng = np.random.default_rng(seed)
    ranks = rng.integers(0, total, size=min(total, 32))
    for r in map(int, ranks):
        assert _gray_rank(_gray_digits(r, radices, rests), rests) == r


# ----------------------------------------------------------------------
# Rank draws
# ----------------------------------------------------------------------
def test_sampled_ranks_sorted_in_range_and_deterministic():
    for method in ("uniform", "stratified"):
        a = _sampled_ranks(10_000, 200, seed=9, method=method)
        b = _sampled_ranks(10_000, 200, seed=9, method=method)
        assert a == b
        assert len(a) == 200
        assert a == sorted(a)
        assert all(0 <= r < 10_000 for r in a)
    assert _sampled_ranks(10_000, 200, 9, "uniform") != _sampled_ranks(
        10_000, 200, 10, "uniform"
    )


def test_stratified_draw_takes_one_rank_per_stratum():
    total, samples = 1000, 40
    ranks = _sampled_ranks(total, samples, seed=3, method="stratified")
    # Stratum i is [i*25, (i+1)*25): exactly one draw lands in each.
    assert [r // 25 for r in ranks] == list(range(samples))


def test_orbit_and_stratified_share_the_rank_draw():
    assert _sampled_ranks(5000, 64, 1, "orbit") == _sampled_ranks(
        5000, 64, 1, "stratified"
    )


def test_sampled_ranks_handle_huge_totals():
    total = 10**40  # far past uint64: draws must stay exact Python ints
    ranks = _sampled_ranks(total, 50, seed=0, method="stratified")
    assert all(0 <= r < total for r in ranks)
    assert max(ranks) > 2**64  # the draw genuinely reaches the far strata


# ----------------------------------------------------------------------
# Wilson interval
# ----------------------------------------------------------------------
def test_wilson_interval_brackets_the_point_estimate():
    for k, n in ((0, 50), (1, 50), (25, 50), (50, 50)):
        lo, hi = _wilson_interval(k, n, 0.95)
        assert 0.0 <= lo <= k / n <= hi <= 1.0
    assert _wilson_interval(0, 0, 0.95) == (0.0, 1.0)
    # Never collapses to a point at the extremes.
    assert _wilson_interval(0, 50, 0.95)[1] > 0.0
    assert _wilson_interval(50, 50, 0.95)[0] < 1.0


# ----------------------------------------------------------------------
# Estimates vs the exact census
# ----------------------------------------------------------------------
@pytest.mark.parametrize("version", ["sum", "max"])
def test_ci_covers_exact_count_unit_n5(version):
    game = BoundedBudgetGame([1] * 5)
    exact = census_scan(game, version, symmetry=True).report.num_equilibria
    rep = sampled_census_scan(
        game, version, samples=300, seed=11, method="stratified"
    )
    lo, hi = rep.eq_count_ci
    assert lo <= exact <= hi
    assert rep.samples_evaluated == 300
    assert rep.eq_density == rep.eq_samples / 300
    assert sum(c for _, _, c in rep.histogram) == 300


def test_full_stratified_draw_is_the_exact_census():
    game = BoundedBudgetGame([1] * 4)
    total = profile_space_size(game)
    exact = census_scan(game, "sum").report
    rep = sampled_census_scan(
        game, "sum", samples=total, seed=0, method="stratified"
    )
    # One stratum per profile: the "sample" is the whole space.
    assert rep.eq_samples == exact.num_equilibria
    assert rep.eq_count_estimate == pytest.approx(exact.num_equilibria)
    assert rep.opt_diameter_seen == exact.opt_diameter
    assert rep.worst_equilibrium_diameter_seen == exact.worst_equilibrium_diameter
    assert rep.poa_estimate is not None


def test_orbit_method_bit_identical_to_stratified():
    game = BoundedBudgetGame([1] * 5)
    a = sampled_census_scan(game, "max", samples=128, seed=2, method="stratified")
    b = sampled_census_scan(game, "max", samples=128, seed=2, method="orbit")
    assert a.histogram == b.histogram
    assert a.eq_samples == b.eq_samples
    assert a.eq_density_ci == b.eq_density_ci
    assert a.poa_ci == b.poa_ci


# ----------------------------------------------------------------------
# Determinism across execution shapes
# ----------------------------------------------------------------------
def test_estimate_invariant_under_workers_and_shards(tmp_path):
    game = BoundedBudgetGame([1] * 5)
    base = sampled_census_scan(game, "sum", samples=120, seed=4)
    multi = sampled_census_scan(game, "sum", samples=120, seed=4, workers=3)
    ckpt = sampled_census_scan(
        game,
        "sum",
        samples=120,
        seed=4,
        checkpoint_dir=str(tmp_path),
        shard_count=5,
        workers=2,
    )
    assert multi == base
    assert ckpt == base


def test_checkpointed_resume_replays_bit_identically(tmp_path):
    game = BoundedBudgetGame([1] * 5)
    first = sampled_census_scan(
        game, "sum", samples=60, seed=8, checkpoint_dir=str(tmp_path)
    )
    again = sampled_census_scan(
        game, "sum", samples=60, seed=8, checkpoint_dir=str(tmp_path), resume=True
    )
    assert again == first


def test_resume_manifest_pins_seed_and_method(tmp_path):
    game = BoundedBudgetGame([1] * 5)
    sampled_census_scan(
        game, "sum", samples=60, seed=8, checkpoint_dir=str(tmp_path)
    )
    with pytest.raises(CheckpointError, match="manifest mismatch"):
        sampled_census_scan(
            game,
            "sum",
            samples=60,
            seed=9,
            checkpoint_dir=str(tmp_path),
            resume=True,
        )
    with pytest.raises(CheckpointError, match="manifest mismatch"):
        sampled_census_scan(
            game,
            "sum",
            samples=60,
            seed=8,
            method="stratified",
            checkpoint_dir=str(tmp_path),
            resume=True,
        )


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def test_sampled_scan_validates_arguments(tmp_path):
    game = BoundedBudgetGame([1] * 4)
    with pytest.raises(GameError, match="samples must be positive"):
        sampled_census_scan(game, "sum", samples=0)
    with pytest.raises(GameError, match="unknown sampling method"):
        sampled_census_scan(game, "sum", samples=5, method="bogus")
    with pytest.raises(GameError, match="confidence"):
        sampled_census_scan(game, "sum", samples=5, confidence=1.0)
    with pytest.raises(GameError, match="workers"):
        sampled_census_scan(game, "sum", samples=5, workers=0)
    with pytest.raises(GameError, match="one rank per stratum"):
        sampled_census_scan(game, "sum", samples=10**6, method="stratified")
    with pytest.raises(GameError, match="require checkpoint_dir"):
        sampled_census_scan(game, "sum", samples=5, resume=True)
    with pytest.raises(GameError, match="128-bit"):
        sampled_census_scan(
            BoundedBudgetGame([1] * 12), "sum", samples=5, method="orbit"
        )


# ----------------------------------------------------------------------
# Experiment wiring
# ----------------------------------------------------------------------
def test_experiment_appends_sampled_rows_with_covering_cis():
    report = exact_census_experiment(
        instances=(("unit n=4", (1, 1, 1, 1)),), samples=40, seed=3
    )
    sampled_rows = [
        r for r in report.rows if str(r["version"]).endswith("/sampled")
    ]
    assert len(sampled_rows) == 2  # one per cost version
    assert all("of 81" in str(r["profiles"]) for r in sampled_rows)
    # A CI missing its exact count would have appended a loud note.
    assert not any("misses the exact count" in n for n in report.notes)
