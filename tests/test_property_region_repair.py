"""Property suite for the affected-region repair and unit op-forwarding.

Hypothesis drives random arc-swap / edge-op sequences over *tree-like*
generators — the regime the affected-region tier exists for (deletions
dirty many rows but only small regions per row) — and pins:

* affected-region repair == fresh recompute, for both engines, at every
  step of every sequence (the engines may pick any tier; the matrices
  must be bit-identical either way);
* the unit :class:`~repro.core.distance_cache.DistanceCache` step
  forwarder (rm/add chains replayed into lagging player engines) is
  indistinguishable from a freshly built punctured engine;
* per-player snapshot adoption (the pool's ``U(G - u)`` bundles) never
  changes a distance.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance_cache import DistanceCache
from repro.graphs import DistanceEngine, WeightedDistanceEngine
from repro.graphs.digraph import OwnedDigraph
from repro.graphs.weighted_engine import weighted_csr_from_csr

from conftest import random_tree_digraph


def _tree_graph(seed: int, n: int, extra: int) -> OwnedDigraph:
    return random_tree_digraph(np.random.default_rng(seed), n, extra)


def _edges_of(g: OwnedDigraph) -> "list[tuple[int, int]]":
    csr = g.undirected_csr()
    return [(u, int(v)) for u in range(g.n) for v in csr.neighbors(u) if u < int(v)]


# ----------------------------------------------------------------------
# Region repair == fresh recompute under random deletion sequences
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=4, max_value=24),
    extra=st.integers(min_value=0, max_value=4),
    data=st.data(),
)
def test_unit_region_repair_equals_fresh_recompute(seed, n, extra, data):
    g = _tree_graph(seed, n, extra)
    engine = DistanceEngine(g.undirected_csr(), dirty_fraction="adaptive")
    edges = _edges_of(g)
    order = data.draw(st.permutations(range(len(edges))))
    for idx in order[: min(len(order), 12)]:
        x, y = edges[idx]
        engine.remove_edge(x, y)
        fresh = DistanceEngine(engine.csr)
        assert np.array_equal(np.asarray(engine.matrix), np.asarray(fresh.matrix))


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=4, max_value=18),
    data=st.data(),
)
def test_weighted_region_repair_equals_fresh_recompute(seed, n, data):
    g = _tree_graph(seed, n, 2)
    weights = data.draw(
        st.lists(
            st.integers(min_value=1, max_value=4),
            min_size=g.num_arcs,
            max_size=g.num_arcs,
        )
    )
    wcsr = weighted_csr_from_csr(g.undirected_csr())
    # Reassign arbitrary small positive lengths (both directions equal).
    warr = wcsr.weights.copy()
    edges = _edges_of(g)
    for w, (x, y) in zip(weights, edges):
        for a, b in ((x, y), (y, x)):
            lo, hi = int(wcsr.indptr[a]), int(wcsr.indptr[a + 1])
            pos = lo + int(np.searchsorted(wcsr.indices[lo:hi], b))
            warr[pos] = w
    wcsr = type(wcsr)(n=wcsr.n, indptr=wcsr.indptr, indices=wcsr.indices, weights=warr)
    engine = WeightedDistanceEngine(wcsr, max_weight=4)
    order = data.draw(st.permutations(range(len(edges))))
    for idx in order[: min(len(order), 10)]:
        x, y = edges[idx]
        engine.remove_edge(x, y)
        fresh = WeightedDistanceEngine(engine.wcsr, inf=engine.inf)
        assert np.array_equal(np.asarray(engine.matrix), np.asarray(fresh.matrix))


# ----------------------------------------------------------------------
# Unit op-forwarding: replayed player engines == fresh punctured builds
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=3, max_value=9),
    steps=st.integers(min_value=1, max_value=12),
    data=st.data(),
)
def test_unit_cache_step_forwarding_equals_fresh(seed, n, steps, data):
    rng = np.random.default_rng(seed)
    g = random_tree_digraph(rng, n, 1)
    cache = DistanceCache(g, dirty_fraction="adaptive")
    # Touch every player once so later syncs exercise the forwarder.
    for u in range(n):
        cache.player(u)
    for _ in range(steps):
        j = data.draw(st.integers(min_value=0, max_value=n - 1))
        outs = [int(v) for v in g.out_neighbors(j)]
        others = [v for v in range(n) if v != j and v not in outs]
        if outs and others:
            dropped = outs[data.draw(st.integers(0, len(outs) - 1))]
            added = others[data.draw(st.integers(0, len(others) - 1))]
            g.remove_arc(j, dropped)
            g.add_arc(j, added)
        elif others:
            g.add_arc(j, others[data.draw(st.integers(0, len(others) - 1))])
        elif outs:
            g.remove_arc(j, outs[data.draw(st.integers(0, len(outs) - 1))])
        subset = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=1,
                max_size=n,
                unique=True,
            )
        )
        for u in subset:
            engine = cache.player(u)
            fresh = DistanceEngine(g.undirected_csr_without(u))
            assert np.array_equal(
                np.asarray(engine.matrix), np.asarray(fresh.matrix)
            )


def test_unit_cache_forwarding_actually_forwards():
    """A swap by player a, read by player b, must replay diff-free (no
    punctured-substrate rebuild: the engine sees two single-edge ops)."""
    g = OwnedDigraph(5)
    for v in range(1, 5):
        g.add_arc(0, v)
    cache = DistanceCache(g)
    for u in range(5):
        cache.player(u)
    before = cache.stats()
    g.remove_arc(0, 4)
    g.add_arc(1, 4)
    for u in range(5):
        engine = cache.player(u)
        fresh = DistanceEngine(g.undirected_csr_without(u))
        assert np.array_equal(np.asarray(engine.matrix), np.asarray(fresh.matrix))
    after = cache.stats()
    assert after["step_forwards"] >= before["step_forwards"] + 4


# ----------------------------------------------------------------------
# Per-player snapshot adoption (pool bundle contract)
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_player_snapshot_adoption_matches_cold_build(seed):
    rng = np.random.default_rng(seed)
    g = random_tree_digraph(rng, 8, 2)
    snapshots = {
        u: DistanceEngine.from_snapshot(
            g.undirected_csr_without(u),
            DistanceEngine(g.undirected_csr_without(u)).matrix,
        )
        for u in range(4)
    }
    warm = DistanceCache(g, player_engines=snapshots)
    cold = DistanceCache(g.copy())
    for u in range(g.n):
        assert np.array_equal(
            np.asarray(warm.player(u).matrix), np.asarray(cold.player(u).matrix)
        )
    for u in range(4):
        assert warm.player(u).stats["rebuilds"] == 0  # adopted, never rebuilt
    # Mutating the graph must detach (copy-on-write) and stay exact.
    g.remove_arc(1, int(g.out_neighbors(1)[0])) if g.out_degree(1) else g.add_arc(1, 0)
    for u in range(4):
        fresh = DistanceEngine(g.undirected_csr_without(u))
        assert np.array_equal(
            np.asarray(warm.player(u).matrix), np.asarray(fresh.matrix)
        )
