"""Unit tests for deviation search and equilibrium predicates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    find_improving_deviation,
    is_best_response,
    is_equilibrium,
    is_weak_equilibrium,
    satisfies_lemma_2_2,
)
from repro.errors import GameError
from repro.graphs import OwnedDigraph, path_realization, star_realization


def test_lemma_2_2_local_diameter_one():
    g = star_realization(4, 0, center_owns=True)
    assert satisfies_lemma_2_2(g, 0)


def test_lemma_2_2_local_diameter_two_no_brace():
    g = star_realization(5, 0, center_owns=True)
    # Leaves have local diameter 2 and no brace.
    for leaf in range(1, 5):
        assert satisfies_lemma_2_2(g, leaf)


def test_lemma_2_2_brace_disqualifies():
    g = OwnedDigraph(3)
    g.add_arc(0, 1)
    g.add_arc(1, 0)
    g.add_arc(1, 2)
    # Vertex 0 has local diameter 2 but sits in a brace.
    assert not satisfies_lemma_2_2(g, 0)


def test_lemma_2_2_large_diameter_disqualifies():
    g = path_realization(5)
    # The path ends have local diameter 4 > 2.
    assert not satisfies_lemma_2_2(g, 0)
    assert not satisfies_lemma_2_2(g, 4)
    # The center has local diameter exactly 2 and no brace: the lemma
    # applies (and indeed the center is playing a best response).
    assert satisfies_lemma_2_2(g, 2)


def test_lemma_2_2_disconnected_disqualifies(two_components):
    assert not satisfies_lemma_2_2(two_components, 0)


def test_lemma_2_2_single_vertex():
    assert satisfies_lemma_2_2(OwnedDigraph(1), 0)


def test_lemma_2_2_consistent_with_exact(rng):
    # Lemma 2.2 players must have no improving exact deviation.
    from conftest import random_owned_digraph

    for _ in range(10):
        n = int(rng.integers(2, 9))
        g = random_owned_digraph(rng, n, p=0.5)
        for u in range(n):
            if g.out_degree(u) > 3:
                continue
            if satisfies_lemma_2_2(g, u):
                for version in ("sum", "max"):
                    dev = find_improving_deviation(g, u, version, use_lemma=False)
                    assert dev is None, (u, version)


def test_find_improving_deviation_path_end():
    g = path_realization(5)
    dev = find_improving_deviation(g, 0, "sum")
    assert dev is not None
    assert dev.is_improving
    assert dev.strategy == (2,)


def test_is_best_response_methods():
    g = star_realization(6, 0, center_owns=True)
    assert is_best_response(g, 0, "sum")
    assert is_best_response(g, 0, "max", method="swap")
    assert is_best_response(g, 0, "sum", method="greedy")


def test_unknown_method_rejected(path5):
    with pytest.raises(GameError):
        is_best_response(path5, 0, "sum", method="annealing")


def test_is_equilibrium_star():
    g = star_realization(6, 0, center_owns=True)
    assert is_equilibrium(g, "sum")
    assert is_equilibrium(g, "max")
    assert is_weak_equilibrium(g, "sum")


def test_is_equilibrium_path_fails():
    g = path_realization(5)
    assert not is_equilibrium(g, "sum")
    assert not is_equilibrium(g, "max")


def test_is_equilibrium_players_subset():
    g = path_realization(5)
    # Vertex 3's arc to 4 is forced (only way to reach 4)... it can still
    # relink elsewhere; but vertex 2 keeps connectivity whatever happens.
    assert is_equilibrium(g, "sum", players=[4])  # zero budget: trivially stable


def test_two_vertex_brace_is_equilibrium(brace_pair):
    assert is_equilibrium(brace_pair, "sum")
    assert is_equilibrium(brace_pair, "max")


# ----------------------------------------------------------------------
# deviation_improves: the single-deviation point verdict (PR-6)
# ----------------------------------------------------------------------
def test_deviation_improves_agrees_with_env_pricing():
    from conftest import random_owned_digraph

    from repro.core import DistanceCache, deviation_improves
    from repro.core.best_response import BestResponseEnvironment

    rng = np.random.default_rng(99)
    for _ in range(8):
        n = int(rng.integers(4, 11))
        g = random_owned_digraph(rng, n, p=0.3)
        caches = [None, DistanceCache(g), DistanceCache(g, rows="lazy")]
        for version in ("sum", "max"):
            for u in range(n):
                cur = tuple(sorted(int(v) for v in g.out_neighbors(u)))
                if not cur:
                    continue
                others = [v for v in range(n) if v != u]
                dev = tuple(
                    sorted(
                        int(v)
                        for v in rng.choice(
                            others, size=len(cur), replace=False
                        )
                    )
                )
                verdicts = {
                    deviation_improves(g, u, dev, version, cache=c)
                    for c in caches
                }
                assert len(verdicts) == 1
                env = BestResponseEnvironment(g, u, version)
                truth = env.evaluate(dev) < env.evaluate(cur)
                assert verdicts.pop() == truth


def test_deviation_improves_current_strategy_is_never_improving():
    from repro.core import deviation_improves

    g = path_realization(5)
    for u in range(5):
        cur = [int(v) for v in g.out_neighbors(u)]
        if cur:
            assert not deviation_improves(g, u, cur, "sum")


def test_deviation_improves_validates_inputs():
    from repro.core import deviation_improves
    from repro.errors import VertexError

    g = path_realization(4)
    with pytest.raises(VertexError):
        deviation_improves(g, 9, [0], "sum")
    with pytest.raises(VertexError):
        deviation_improves(g, 0, [9], "sum")
    with pytest.raises(GameError):
        deviation_improves(g, 0, [0], "sum")  # self-link
    with pytest.raises(GameError):
        deviation_improves(g, 0, [2, 3], "sum")  # over budget (owns 1 arc)


def test_deviation_improves_cold_path_stays_lazy():
    """The no-cache verdict must price against a lazy throwaway engine,
    not a full all-pairs build."""
    from repro.core import deviation_improves

    g = path_realization(30)
    # An end vertex relinking to the middle strictly improves.
    assert deviation_improves(g, 0, [15], "sum", use_lemma=False)
    assert not deviation_improves(g, 0, [1], "sum", use_lemma=False)
