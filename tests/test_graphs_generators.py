"""Unit tests for instance generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import BudgetError, GraphError
from repro.graphs import (
    cycle_realization,
    is_connected,
    is_tree,
    path_realization,
    random_budgets_with_sum,
    random_connected_realization,
    random_positive_budgets,
    random_realization,
    random_tree_realization,
    star_realization,
    uniform_budgets,
    unit_budgets,
)


def test_unit_budgets():
    assert unit_budgets(5).tolist() == [1, 1, 1, 1, 1]
    with pytest.raises(BudgetError):
        unit_budgets(1)


def test_uniform_budgets_validation():
    assert uniform_budgets(5, 3).tolist() == [3] * 5
    with pytest.raises(BudgetError):
        uniform_budgets(4, 4)
    with pytest.raises(BudgetError):
        uniform_budgets(4, -1)


def test_random_budgets_with_sum_basic(rng):
    for _ in range(20):
        n = int(rng.integers(2, 20))
        total = int(rng.integers(0, n * (n - 1) // 2))
        b = random_budgets_with_sum(n, total, rng)
        assert b.sum() == total
        assert (b >= 0).all() and (b < n).all()


def test_random_budgets_min_budget(rng):
    b = random_budgets_with_sum(10, 15, rng, min_budget=1)
    assert b.sum() == 15
    assert (b >= 1).all()


def test_random_budgets_infeasible():
    with pytest.raises(BudgetError):
        random_budgets_with_sum(5, 3, 0, min_budget=1)


def test_random_positive_budgets(rng):
    b = random_positive_budgets(8, 12, rng)
    assert (b > 0).all() and b.sum() == 12


def test_random_realization_respects_budgets(rng):
    b = np.array([2, 0, 1, 3, 1])
    g = random_realization(b, rng)
    assert g.out_degrees().tolist() == b.tolist()
    for u, v in g.arcs():
        assert u != v


def test_random_realization_deterministic_seed():
    b = [1, 2, 1, 0, 2]
    g1 = random_realization(b, seed=99)
    g2 = random_realization(b, seed=99)
    assert g1 == g2
    g3 = random_realization(b, seed=100)
    # Overwhelmingly likely to differ.
    assert g1 != g3 or g1.num_arcs == 0


def test_random_realization_invalid_budgets():
    with pytest.raises(BudgetError):
        random_realization([5], 0)
    with pytest.raises(BudgetError):
        random_realization([-1, 0], 0)


def test_random_connected_realization(rng):
    for _ in range(10):
        n = int(rng.integers(3, 15))
        b = random_budgets_with_sum(n, n - 1 + int(rng.integers(0, 4)), rng)
        g = random_connected_realization(b, rng)
        assert is_connected(g)
        assert g.out_degrees().tolist() == b.tolist()


def test_random_connected_needs_enough_budget():
    with pytest.raises(BudgetError):
        random_connected_realization([1, 0, 0], 0)


def test_random_tree_realization(rng):
    for _ in range(10):
        n = int(rng.integers(1, 25))
        g, budgets = random_tree_realization(n, rng)
        assert budgets.sum() == n - 1
        assert g.out_degrees().tolist() == budgets.tolist()
        if n >= 2:
            assert is_tree(g)


def test_random_tree_small_sizes():
    g1, b1 = random_tree_realization(1, seed=0)
    assert g1.num_arcs == 0 and b1.tolist() == [0]
    g2, b2 = random_tree_realization(2, seed=0)
    assert g2.num_arcs == 1 and b2.sum() == 1


def test_path_realization_orientation():
    f = path_realization(4, forward=True)
    assert f.has_arc(0, 1) and f.has_arc(2, 3)
    r = path_realization(4, forward=False)
    assert r.has_arc(1, 0) and r.has_arc(3, 2)
    assert is_tree(f) and is_tree(r)


def test_cycle_realization():
    g = cycle_realization(5)
    assert g.out_degrees().tolist() == [1] * 5
    assert is_connected(g)
    with pytest.raises(GraphError):
        cycle_realization(1)


def test_star_realization_ownership():
    center_owned = star_realization(5, 0, center_owns=True)
    assert center_owned.out_degree(0) == 4
    leaf_owned = star_realization(5, 2, center_owns=False)
    assert leaf_owned.out_degree(2) == 0
    assert leaf_owned.in_neighbors(2).size == 4
    with pytest.raises(GraphError):
        star_realization(3, 5)
