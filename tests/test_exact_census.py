"""Tests for the exact-census experiment and cross-validation of
dynamics against full enumeration."""

from __future__ import annotations

import pytest

from repro.core import (
    BoundedBudgetGame,
    best_response_dynamics,
    enumerate_equilibria,
)
from repro.experiments import exact_census_experiment
from repro.experiments.runner import REGISTRY


def test_census_experiment_rows():
    rep = exact_census_experiment(instances=(("unit n=3", (1, 1, 1)),))
    assert len(rep.rows) == 2  # sum + max
    for r in rep.rows:
        assert r["equilibria"] >= 1  # Theorem 2.3
        assert r["structure_thms"] is True
    assert not rep.notes  # no violations


def test_census_registered():
    assert "EXACT-tiny" in REGISTRY


def test_dynamics_fixed_points_are_enumerated_equilibria():
    # Cross-validation: every fixed point exact dynamics reaches must be
    # a member of the exhaustively enumerated equilibrium set.
    game = BoundedBudgetGame([1, 1, 1, 1])
    for version in ("sum", "max"):
        eq_keys = {g.profile_key() for g in enumerate_equilibria(game, version)}
        for seed in range(6):
            res = best_response_dynamics(
                game, game.random_realization(seed=seed), version, max_rounds=60
            )
            assert res.converged
            assert res.graph.profile_key() in eq_keys, (version, seed)


def test_enumerated_equilibria_are_fixed_points():
    # Converse: starting dynamics AT an enumerated equilibrium must not move.
    game = BoundedBudgetGame([1, 1, 1])
    for version in ("sum", "max"):
        for g in enumerate_equilibria(game, version):
            res = best_response_dynamics(game, g, version, max_rounds=5)
            assert res.converged
            assert res.num_moves == 0
            assert res.graph == g
