"""Unit-engine-specific tests.

The behavior shared with the weighted engine — oracle-exact builds,
repair-equals-recompute, rollback/noop, epoch staleness, read-only
views, snapshot copy-on-write — lives in the parametrized conformance
suite (``test_engine_conformance.py``). This file keeps only what is
unique to :class:`~repro.graphs.engine.DistanceEngine`: the
``from_graph`` construction surface and the adaptive delta-vs-rebuild
budget (the weighted engine only takes fixed fractions).
"""

from __future__ import annotations

import numpy as np

from repro.graphs import (
    DistanceEngine,
    OwnedDigraph,
    all_pairs_distances,
    csr_without_vertex,
)

from conftest import random_owned_digraph, random_strategy_swap, scipy_distance_oracle


def test_from_graph_builds_engine_over_underlying_graph(rng):
    g = random_owned_digraph(rng, 11, p=0.3)
    engine = DistanceEngine.from_graph(g)
    assert np.array_equal(
        engine.distances(), all_pairs_distances(g.undirected_csr())
    )


def test_from_graph_isolate_builds_punctured_substrate(rng):
    for _ in range(6):
        n = int(rng.integers(2, 14))
        g = random_owned_digraph(rng, n, p=0.3)
        u = int(rng.integers(n))
        engine = DistanceEngine.from_graph(g, isolate=u)
        ref = all_pairs_distances(csr_without_vertex(g.undirected_csr(), u))
        assert np.array_equal(engine.distances(), ref)
        assert engine.csr.degree(u) == 0


def test_adaptive_budget_tracks_costs_and_repairs_exactly(rng):
    g = random_owned_digraph(rng, 16, p=0.25)
    engine = DistanceEngine.from_graph(g, dirty_fraction="adaptive")
    assert engine.adaptive
    for _ in range(12):
        random_strategy_swap(rng, g)
        engine.update(g.undirected_csr())
        assert np.array_equal(engine.distances(), scipy_distance_oracle(g))
    assert 1.0 <= engine.row_budget() <= g.n
