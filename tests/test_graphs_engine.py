"""Differential tests for the incremental distance engine.

``scipy.sparse.csgraph`` and ``networkx`` serve as independent oracles
for both the batched-BFS and the delta-update paths, on seeded random
owned digraphs including disconnected ones.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from scipy.sparse.csgraph import shortest_path

from repro.errors import GraphError, StaleDistanceError, VertexError
from repro.graphs import (
    UNREACHABLE,
    DistanceEngine,
    OwnedDigraph,
    all_pairs_distances,
    cinf,
    csr_without_vertex,
)

from conftest import random_owned_digraph, to_networkx_undirected


def scipy_oracle(g: OwnedDigraph) -> np.ndarray:
    """All-pairs distances of ``U(G)`` via scipy, UNREACHABLE for inf."""
    n = g.n
    mat = sp.lil_matrix((n, n), dtype=np.int64)
    for u, v in g.underlying_edges():
        mat[u, v] = 1
        mat[v, u] = 1
    dist = shortest_path(mat.tocsr(), method="D", unweighted=True, directed=False)
    out = np.full((n, n), UNREACHABLE, dtype=np.int64)
    finite = np.isfinite(dist)
    out[finite] = dist[finite].astype(np.int64)
    return out


def networkx_oracle(g: OwnedDigraph) -> np.ndarray:
    """All-pairs distances of ``U(G)`` via networkx."""
    import networkx as nx

    G = to_networkx_undirected(g)
    out = np.full((g.n, g.n), UNREACHABLE, dtype=np.int64)
    for s, lengths in nx.all_pairs_shortest_path_length(G):
        for v, d in lengths.items():
            out[s, v] = d
    return out


def random_swap(rng: np.random.Generator, g: OwnedDigraph) -> None:
    """Replace one player's strategy with a random same-size one."""
    u = int(rng.integers(g.n))
    b = g.out_degree(u)
    others = [v for v in range(g.n) if v != u]
    k = min(b if b else int(rng.integers(0, g.n)), len(others))
    new = rng.choice(others, size=k, replace=False) if k else []
    g.set_strategy(u, [int(v) for v in np.atleast_1d(new)])


# ----------------------------------------------------------------------
# Batched BFS vs oracles
# ----------------------------------------------------------------------
def test_initial_build_matches_scipy_and_networkx(rng):
    for _ in range(12):
        n = int(rng.integers(2, 16))
        g = random_owned_digraph(rng, n, p=float(rng.uniform(0.05, 0.45)))
        engine = DistanceEngine.from_graph(g)
        got = engine.distances()
        assert np.array_equal(got, scipy_oracle(g))
        assert np.array_equal(got, networkx_oracle(g))


def test_disconnected_graph_uses_unreachable_sentinel(two_components):
    engine = DistanceEngine.from_graph(two_components)
    d = engine.distances()
    assert d[0, 1] == 1
    assert d[0, 2] == UNREACHABLE
    assert d[4, 0] == UNREACHABLE
    assert d[4, 4] == 0
    # Internally unreachable pairs carry the finite Cinf sentinel.
    assert engine.inf == cinf(5)
    assert engine.matrix[0, 2] == cinf(5)
    assert engine.distance(0, 2) == UNREACHABLE
    assert engine.distance(2, 3) == 1


def test_distances_from_batched_rows_match_oracle(rng):
    for _ in range(8):
        n = int(rng.integers(3, 18))
        g = random_owned_digraph(rng, n, p=0.2)
        engine = DistanceEngine.from_graph(g)
        oracle = scipy_oracle(g)
        oracle[oracle == UNREACHABLE] = engine.inf
        k = int(rng.integers(1, n + 1))
        sources = rng.choice(n, size=k, replace=False)
        rows = engine.distances_from(sources)
        assert np.array_equal(rows, oracle[sources])
        # Preallocated buffer path returns identical content.
        buf = np.empty((k, n), dtype=rows.dtype)
        out = engine.distances_from(sources, out=buf)
        assert out is buf
        assert np.array_equal(buf, rows)


def test_isolated_substrate_matches_bfs_reference(rng):
    for _ in range(8):
        n = int(rng.integers(2, 14))
        g = random_owned_digraph(rng, n, p=0.3)
        u = int(rng.integers(n))
        engine = DistanceEngine.from_graph(g, isolate=u)
        ref = all_pairs_distances(csr_without_vertex(g.undirected_csr(), u))
        assert np.array_equal(engine.distances(), ref)
        assert engine.csr.degree(u) == 0


# ----------------------------------------------------------------------
# Delta updates vs oracles
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dirty_fraction", [None, 1.0, 0.0])
def test_update_tracks_random_swaps(rng, dirty_fraction):
    kwargs = {} if dirty_fraction is None else {"dirty_fraction": dirty_fraction}
    for _ in range(6):
        n = int(rng.integers(3, 16))
        g = random_owned_digraph(rng, n, p=0.25)
        engine = DistanceEngine(g.undirected_csr(), **kwargs)
        for _ in range(8):
            random_swap(rng, g)
            status = engine.update(g.undirected_csr())
            assert status in ("noop", "delta", "rebuild")
            if dirty_fraction == 0.0:
                assert status in ("noop", "rebuild")
            assert np.array_equal(engine.distances(), scipy_oracle(g))


def test_update_handles_disconnection_and_reconnection(rng):
    g = OwnedDigraph(6)
    for i in range(5):
        g.add_arc(i, i + 1)
    engine = DistanceEngine.from_graph(g, dirty_fraction=1.0)
    # Cut the path in the middle: everything across the cut unreachable.
    g.remove_arc(2, 3)
    engine.update(g.undirected_csr())
    assert np.array_equal(engine.distances(), scipy_oracle(g))
    assert engine.distance(0, 5) == UNREACHABLE
    # Reconnect differently.
    g.add_arc(0, 5)
    engine.update(g.undirected_csr())
    assert np.array_equal(engine.distances(), scipy_oracle(g))
    assert engine.distance(2, 3) == 5  # rerouted 2-1-0-5-4-3


def test_update_noop_on_identical_edge_set():
    g = OwnedDigraph(4)
    g.add_arc(0, 1)
    g.add_arc(1, 2)
    engine = DistanceEngine.from_graph(g)
    epoch = engine.epoch
    # A brace collapses onto the existing undirected edge: no edge-set
    # change, so distances and the epoch stay put.
    g.add_arc(1, 0)
    assert engine.update(g.undirected_csr()) == "noop"
    assert engine.epoch == epoch
    g.remove_arc(1, 0)
    assert engine.update(g.undirected_csr()) == "noop"
    assert engine.epoch == epoch


def test_update_rejects_size_change():
    g = OwnedDigraph(4)
    g.add_arc(0, 1)
    engine = DistanceEngine.from_graph(g)
    other = OwnedDigraph(5)
    other.add_arc(0, 1)
    with pytest.raises(GraphError):
        engine.update(other.undirected_csr())


# ----------------------------------------------------------------------
# Epoch / staleness contract
# ----------------------------------------------------------------------
def test_epoch_bumps_and_ensure_epoch_raises(rng):
    g = random_owned_digraph(rng, 8, p=0.3)
    engine = DistanceEngine.from_graph(g)
    seen = engine.epoch
    engine.ensure_epoch(seen)
    random_swap(rng, g)
    status = engine.update(g.undirected_csr())
    if status == "noop":
        engine.ensure_epoch(seen)
    else:
        assert engine.epoch != seen
        with pytest.raises(StaleDistanceError):
            engine.ensure_epoch(seen)


def test_matrix_view_is_read_only():
    g = OwnedDigraph(3)
    g.add_arc(0, 1)
    engine = DistanceEngine.from_graph(g)
    with pytest.raises(ValueError):
        engine.matrix[0, 1] = 7
    with pytest.raises(ValueError):
        engine.row(0)[1] = 7


def test_vertex_and_input_validation():
    g = OwnedDigraph(3)
    g.add_arc(0, 1)
    engine = DistanceEngine.from_graph(g)
    with pytest.raises(VertexError):
        engine.row(3)
    with pytest.raises(VertexError):
        engine.distance(0, -1)
    with pytest.raises(VertexError):
        engine.distances_from([0, 5])
    with pytest.raises(GraphError):
        DistanceEngine(g.undirected_csr(), dirty_fraction=1.5)
    with pytest.raises(GraphError):
        DistanceEngine(g.undirected_csr(), inf=2)


def test_single_vertex_graph():
    g = OwnedDigraph(1)
    engine = DistanceEngine.from_graph(g)
    assert engine.distances().shape == (1, 1)
    assert engine.distance(0, 0) == 0
