"""Unit tests for structural predicates (trees, cycles, decompositions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs import (
    OwnedDigraph,
    cycle_realization,
    distance_to_cycle,
    find_cycle,
    functional_cycle,
    is_forest,
    is_tree,
    is_unicyclic,
    path_realization,
    star_realization,
    tree_center,
    tree_longest_path,
    unique_cycle,
)


def test_path_is_tree(path5):
    assert is_tree(path5)
    assert is_forest(path5)
    assert not is_unicyclic(path5)
    assert find_cycle(path5) is None


def test_brace_is_unicyclic(brace_pair):
    # The paper views a brace as a 2-vertex cycle of the multigraph.
    assert not is_tree(brace_pair)
    assert not is_forest(brace_pair)
    assert is_unicyclic(brace_pair)
    assert sorted(unique_cycle(brace_pair)) == [0, 1]


def test_forest_disconnected(two_components):
    assert is_forest(two_components)
    assert not is_tree(two_components)
    assert not is_unicyclic(two_components)


def test_cycle_is_unicyclic():
    g = cycle_realization(6)
    assert is_unicyclic(g)
    cyc = unique_cycle(g)
    assert sorted(cyc) == list(range(6))


def test_unicyclic_with_pendant():
    g = cycle_realization(4)
    # Can't add arcs to the cycle vertices (unit budgets); grow a new graph.
    h = OwnedDigraph(6)
    for i in range(4):
        h.add_arc(i, (i + 1) % 4)
    h.add_arc(4, 0)
    h.add_arc(5, 4)
    assert is_unicyclic(h)
    assert sorted(unique_cycle(h)) == [0, 1, 2, 3]
    d = distance_to_cycle(h)
    assert d.tolist() == [0, 0, 0, 0, 1, 2]


def test_unique_cycle_rejects_trees(path5):
    with pytest.raises(GraphError):
        unique_cycle(path5)


def test_find_cycle_returns_real_cycle():
    g = OwnedDigraph(7)
    for i in range(5):
        g.add_arc(i, (i + 1) % 5)
    g.add_arc(5, 2)
    g.add_arc(6, 5)
    cyc = find_cycle(g)
    assert cyc is not None
    k = len(cyc)
    assert k >= 2
    csr = g.undirected_csr()
    for i in range(k):
        assert csr.has_edge(cyc[i], cyc[(i + 1) % k])


def test_functional_cycle():
    g = cycle_realization(5)
    assert functional_cycle(g) == [0, 1, 2, 3, 4]
    # rho-shaped functional graph: tail 4 -> 0 joins cycle 0->1->2->0.
    h = OwnedDigraph(5)
    h.add_arc(0, 1)
    h.add_arc(1, 2)
    h.add_arc(2, 0)
    h.add_arc(3, 0)
    h.add_arc(4, 3)
    assert functional_cycle(h) == [0, 1, 2]


def test_functional_cycle_requires_outdeg_one(path5):
    with pytest.raises(GraphError):
        functional_cycle(path5)


def test_tree_longest_path(path5):
    p = tree_longest_path(path5)
    assert p in ([0, 1, 2, 3, 4], [4, 3, 2, 1, 0])


def test_tree_longest_path_star():
    g = star_realization(6)
    p = tree_longest_path(g)
    assert len(p) == 3
    assert p[1] == 0  # the center is interior


def test_tree_longest_path_requires_tree():
    with pytest.raises(GraphError):
        tree_longest_path(cycle_realization(4))


def test_tree_center_path_even_odd():
    assert tree_center(path_realization(5)) == [2]
    assert sorted(tree_center(path_realization(4))) == [1, 2]


def test_tree_center_star():
    assert tree_center(star_realization(9)) == [0]


def test_longest_path_matches_networkx_diameter(rng):
    import networkx as nx

    from repro.graphs import random_tree_realization

    for _ in range(10):
        n = int(rng.integers(2, 30))
        g, _ = random_tree_realization(n, rng)
        p = tree_longest_path(g)
        G = nx.Graph()
        G.add_nodes_from(range(n))
        G.add_edges_from(g.underlying_edges())
        assert len(p) - 1 == nx.diameter(G)
