"""Unit tests for the vectorised BFS kernels, cross-checked vs oracles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import VertexError
from repro.graphs.bfs import (
    UNREACHABLE,
    all_pairs_distances,
    bfs_distances,
    bfs_layers,
    bfs_parents,
    distances_from_sources,
    multi_source_bfs,
)
from repro.graphs.csr import build_csr

from conftest import random_owned_digraph, to_networkx_undirected


def _path_csr(n):
    heads = np.arange(n - 1)
    tails = np.arange(1, n)
    return build_csr(n, heads, tails)


def test_single_source_path():
    csr = _path_csr(6)
    d = bfs_distances(csr, 0)
    assert d.tolist() == [0, 1, 2, 3, 4, 5]
    d = bfs_distances(csr, 3)
    assert d.tolist() == [3, 2, 1, 0, 1, 2]


def test_unreachable_sentinel():
    csr = build_csr(4, np.array([0]), np.array([1]))
    d = bfs_distances(csr, 0)
    assert d[0] == 0 and d[1] == 1
    assert d[2] == UNREACHABLE and d[3] == UNREACHABLE


def test_multi_source_is_min_over_sources():
    csr = _path_csr(7)
    d = multi_source_bfs(csr, [0, 6])
    assert d.tolist() == [0, 1, 2, 3, 2, 1, 0]


def test_multi_source_empty_sources():
    csr = _path_csr(3)
    d = multi_source_bfs(csr, np.array([], dtype=np.int64))
    assert (d == UNREACHABLE).all()


def test_multi_source_duplicate_sources():
    csr = _path_csr(4)
    d = multi_source_bfs(csr, [1, 1, 1])
    assert d.tolist() == [1, 0, 1, 2]


def test_invalid_source_raises():
    csr = _path_csr(3)
    with pytest.raises(VertexError):
        bfs_distances(csr, 3)
    with pytest.raises(VertexError):
        multi_source_bfs(csr, [-1])


def test_parents_encode_shortest_path_tree():
    csr = _path_csr(5)
    dist, parent = bfs_parents(csr, 2)
    assert parent[2] == 2
    # Walking parents from any vertex decreases distance by 1 each step.
    for v in range(5):
        if dist[v] <= 0:
            continue
        w = v
        steps = 0
        while w != 2:
            w = int(parent[w])
            steps += 1
        assert steps == dist[v]


def test_parents_unreachable():
    csr = build_csr(3, np.array([0]), np.array([1]))
    dist, parent = bfs_parents(csr, 0)
    assert parent[2] == -1 and dist[2] == UNREACHABLE


def test_layers_partition_reachable_set():
    csr = _path_csr(5)
    layers = bfs_layers(csr, 0)
    assert [l.tolist() for l in layers] == [[0], [1], [2], [3], [4]]


def test_layers_of_isolated_vertex():
    csr = build_csr(2, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
    layers = bfs_layers(csr, 0)
    assert len(layers) == 1 and layers[0].tolist() == [0]


def test_all_pairs_matches_networkx(rng):
    import networkx as nx

    for _ in range(10):
        n = int(rng.integers(2, 15))
        g = random_owned_digraph(rng, n, p=0.25)
        csr = g.undirected_csr()
        ours = all_pairs_distances(csr)
        G = to_networkx_undirected(g)
        for u in range(n):
            lengths = nx.single_source_shortest_path_length(G, u)
            for v in range(n):
                expected = lengths.get(v, UNREACHABLE)
                assert ours[u, v] == expected, (u, v)


def test_all_pairs_matches_scipy(rng):
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import shortest_path

    n = 20
    g = random_owned_digraph(rng, n, p=0.15)
    csr = g.undirected_csr()
    ours = all_pairs_distances(csr).astype(float)
    ours[ours == UNREACHABLE] = np.inf
    data = np.ones(csr.indices.size)
    mat = csr_matrix((data, csr.indices, csr.indptr), shape=(n, n))
    theirs = shortest_path(mat, method="D", unweighted=True)
    assert np.array_equal(ours, theirs)


def test_distances_from_sources_rows():
    csr = _path_csr(4)
    mat = distances_from_sources(csr, [3, 0])
    assert mat[0].tolist() == [3, 2, 1, 0]
    assert mat[1].tolist() == [0, 1, 2, 3]


def test_symmetry_of_all_pairs(rng):
    g = random_owned_digraph(rng, 12, p=0.2)
    d = all_pairs_distances(g.undirected_csr())
    assert np.array_equal(d, d.T)
