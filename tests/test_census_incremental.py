"""Golden-equivalence and property tests for the incremental census.

The incremental Gray-order kernel (engine delta repair, symmetry orbit
pruning, sharded workers) must be *bit-identical* to the rebuild-per-
profile brute force on every default instance — these tests pin that
contract, plus the structural invariants it rests on: revolving-door
adjacency, Gray-walk coverage, engine-repaired distances matching fresh
BFS at every step, and the budget-symmetry orbit decomposition.
"""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BoundedBudgetGame,
    DistanceCache,
    census_scan,
    enumerate_equilibria,
    exact_prices,
    gray_profile_walk,
    profile_space_size,
    revolving_door_combinations,
    satisfies_lemma_2_2,
    screen_best_responders,
)
from repro.core.enumeration import _budget_symmetry_group, _OrbitKeys
from repro.errors import GameError
from repro.graphs import DistanceEngine, distance_matrix
from repro.graphs.digraph import OwnedDigraph
from repro.parallel.executor import contiguous_shards

from repro.experiments.exact_census import DEFAULT_INSTANCES, GOLDEN_INSTANCES


# ----------------------------------------------------------------------
# Gray-order machinery
# ----------------------------------------------------------------------
@pytest.mark.parametrize("m,t", [(m, t) for m in range(8) for t in range(m + 1)])
def test_revolving_door_complete_and_adjacent(m, t):
    combos = revolving_door_combinations(range(m), t)
    assert len(combos) == math.comb(m, t)
    assert len(set(combos)) == len(combos)
    for a, b in zip(combos, combos[1:]):
        sa, sb = set(a), set(b)
        assert len(sa - sb) == 1 and len(sb - sa) == 1  # one swap apart


def test_gray_walk_covers_profile_space_once():
    game = BoundedBudgetGame([2, 1, 1, 0])
    seen = set()
    last_key = None
    for rank, graph, swap in gray_profile_walk(game):
        key = graph.profile_key()
        assert key not in seen
        seen.add(key)
        if last_key is not None:
            # Exactly one player changed, by exactly one arc swap.
            changed = [i for i, (a, b) in enumerate(zip(last_key, key)) if a != b]
            assert len(changed) == 1
            (j,) = changed
            assert swap is not None and swap[0] == j
            assert len(set(last_key[j]) - set(key[j])) == 1
        last_key = key
    assert len(seen) == profile_space_size(game)


def test_gray_walk_sharding_is_a_partition():
    game = BoundedBudgetGame([1, 1, 1, 1])
    total = profile_space_size(game)
    full = [g.profile_key() for _, g, _ in gray_profile_walk(game)]
    for parts in (1, 2, 3, 7):
        shards = contiguous_shards(total, parts)
        assert shards[0][0] == 0 and shards[-1][1] == total
        assert all(a[1] == b[0] for a, b in zip(shards, shards[1:]))
        stitched = []
        for lo, hi in shards:
            stitched.extend(
                g.profile_key() for _, g, _ in gray_profile_walk(game, start=lo, stop=hi)
            )
        assert stitched == full


@pytest.mark.parametrize(
    "budgets", [(1, 1, 1), (2, 1, 0), (1, 1, 1, 1), (2, 2, 1, 1, 0), (0, 0, 1, 0)]
)
def test_gray_digit_stream_matches_unranking(budgets):
    """The amortised-O(1) successor stream must reproduce the exact
    digit sequence of per-rank unranking, from any start rank."""
    from repro.core.enumeration import (
        _gray_digit_stream,
        _gray_digits,
        _profile_tables,
    )

    game = BoundedBudgetGame(list(budgets))
    _, radices, rests = _profile_tables(game)
    total = rests[0]
    for start in sorted({0, 1, total // 2, total - 2} & set(range(total))):
        digits = _gray_digits(start, radices, rests)
        stream = _gray_digit_stream(radices, digits)
        for rank in range(start + 1, total):
            j, old, new = next(stream)
            assert abs(new - old) == 1
            assert digits == _gray_digits(rank, radices, rests)
        with pytest.raises(StopIteration):
            next(stream)


@pytest.mark.parametrize("budgets", [(1, 1, 1, 1), (2, 2, 1, 1, 0), (1, 1, 1, 1, 1)])
def test_orbit_advance_block_matches_per_step_scan(budgets):
    """The vectorised block advance (probe keys + exact recheck) must
    make exactly the per-step canonical decisions with exactly the
    per-step orbit sizes."""
    game = BoundedBudgetGame(list(budgets))
    perms = _budget_symmetry_group(budgets)
    n = game.n
    # Reference: an independent from-scratch scan per profile (the walk
    # reuses one mutable graph, so the reference must run in-loop).
    ref_sizes = []
    swaps = []
    orbit = None
    for rank, graph, swap in gray_profile_walk(game):
        keys = _OrbitKeys(n, perms)
        for a, b in graph.arcs():
            keys.toggle(a, b, True)
        size = keys.canonical_orbit_size()
        ref_sizes.append(0 if size is None else size)
        if swap is None:
            orbit = _OrbitKeys(n, perms)
            for a, b in graph.arcs():
                orbit.toggle(a, b, True)
        else:
            swaps.append(swap)
    got = [orbit.canonical_orbit_size() or 0]
    for chunk_start in range(0, len(swaps), 7):  # odd block size on purpose
        chunk = swaps[chunk_start : chunk_start + 7]
        js = np.asarray([s[0] for s in chunk], dtype=np.int64)
        drops = np.asarray([s[1] for s in chunk], dtype=np.int64)
        adds = np.asarray([s[2] for s in chunk], dtype=np.int64)
        got.extend(int(x) for x in orbit.advance_block(js, drops, adds))
    assert got == ref_sizes
    total = sum(got)
    assert total == profile_space_size(game)


def test_contiguous_shards_edge_cases():
    assert contiguous_shards(0, 3) == []
    assert contiguous_shards(5, 1) == [(0, 5)]
    assert contiguous_shards(5, 8) == [(i, i + 1) for i in range(5)]
    with pytest.raises(Exception):
        contiguous_shards(5, 0)


# ----------------------------------------------------------------------
# Engine-repaired distances along the walk (hypothesis)
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    budgets=st.lists(st.integers(min_value=0, max_value=2), min_size=2, max_size=4),
    start_frac=st.floats(min_value=0.0, max_value=0.9),
    data=st.data(),
)
def test_gray_walk_engine_distances_match_fresh_bfs(budgets, start_frac, data):
    budgets = [min(b, len(budgets) - 1) for b in budgets]
    game = BoundedBudgetGame(budgets)
    total = profile_space_size(game)
    start = int(start_frac * total)
    stop = min(total, start + data.draw(st.integers(min_value=1, max_value=40)))
    cache = None
    steps = 0
    for rank, graph, swap in gray_profile_walk(game, start=start, stop=stop):
        if cache is None:
            cache = DistanceCache(graph, dirty_fraction="adaptive")
        engine = cache.base()
        assert np.array_equal(np.asarray(engine.matrix), distance_matrix(graph))
        steps += 1
    assert steps == stop - start


def test_adaptive_dirty_fraction_repair_equals_recompute(rng):
    n = 24
    game = BoundedBudgetGame([2] * n)
    graph = game.random_realization(seed=3)
    engine = DistanceEngine.from_graph(graph, dirty_fraction="adaptive")
    assert engine.adaptive
    for step in range(30):
        u = int(rng.integers(n))
        targets = [v for v in range(n) if v != u]
        graph.set_strategy(u, rng.choice(targets, size=2, replace=False))
        engine.update(graph.undirected_csr())
        assert np.array_equal(np.asarray(engine.matrix), distance_matrix(graph))
    assert 1.0 <= engine.row_budget() <= n


def test_engine_rejects_bad_dirty_fraction_string():
    from repro.errors import GraphError

    g = OwnedDigraph(3)
    g.add_arc(0, 1)
    with pytest.raises(GraphError):
        DistanceEngine.from_graph(g, dirty_fraction="auto")


# ----------------------------------------------------------------------
# Vectorized Lemma 2.2 screen
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_screen_agrees_with_lemma_2_2(seed):
    game = BoundedBudgetGame([1, 2, 1, 0, 2])
    graph = game.random_realization(seed=seed)
    engine = DistanceEngine.from_graph(graph)
    mask = screen_best_responders(graph, engine)
    for u in range(graph.n):
        assert bool(mask[u]) == satisfies_lemma_2_2(graph, u, engine=engine)


# ----------------------------------------------------------------------
# Symmetry orbits
# ----------------------------------------------------------------------
def test_budget_symmetry_group_structure():
    perms = _budget_symmetry_group((1, 1, 2, 1, 0))
    assert perms.shape == (6, 5)  # Sym({0,1,3}) x Sym({2}) x Sym({4})
    assert np.array_equal(perms[0], np.arange(5))
    for perm in perms:
        assert sorted(perm.tolist()) == list(range(5))
        assert all(
            (1, 1, 2, 1, 0)[i] == (1, 1, 2, 1, 0)[perm[i]] for i in range(5)
        )


def test_orbit_decomposition_partitions_profile_space():
    # Every profile lies in exactly one orbit; canonical reps' orbit
    # sizes must therefore sum to the whole space.
    game = BoundedBudgetGame([1, 1, 1, 1])
    perms = _budget_symmetry_group((1, 1, 1, 1))
    total = 0
    reps = 0
    for rank, graph, swap in gray_profile_walk(game):
        orbit = _OrbitKeys(game.n, perms)
        for a, b in graph.arcs():
            orbit.toggle(a, b, True)
        size = orbit.canonical_orbit_size()
        if size is not None:
            total += size
            reps += 1
    assert total == profile_space_size(game) == 81
    assert reps < 81  # pruning actually prunes


def test_symmetry_capped_by_key_width():
    # n = 9..11 became legal with the two-word (128-bit) keys; the cap
    # now binds at n = 12 (n^2 = 144 > 128).
    game = BoundedBudgetGame([1] * 12)
    with pytest.raises(GameError, match="128-bit"):
        census_scan(game, "sum", symmetry=True, max_profiles=10**12)


# ----------------------------------------------------------------------
# Golden equivalence: incremental == brute force, bit for bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("label,budgets", GOLDEN_INSTANCES)
@pytest.mark.parametrize("version", ["sum", "max"])
def test_exact_prices_golden_equivalence(label, budgets, version):
    game = BoundedBudgetGame(list(budgets))
    brute = exact_prices(game, version, incremental=False)
    assert exact_prices(game, version) == brute
    assert exact_prices(game, version, symmetry=True) == brute
    assert exact_prices(game, version, workers=2) == brute
    assert exact_prices(game, version, workers=3, symmetry=True) == brute


@pytest.mark.parametrize("budgets", [(1, 1, 1), (2, 1, 0), (1, 1, 1, 1), (2, 1, 1, 0)])
@pytest.mark.parametrize("version", ["sum", "max"])
def test_enumerate_equilibria_golden_equivalence(budgets, version):
    game = BoundedBudgetGame(list(budgets))
    brute = enumerate_equilibria(game, version, incremental=False)
    for kwargs in ({}, {"symmetry": True}, {"workers": 2, "symmetry": True}):
        fast = enumerate_equilibria(game, version, **kwargs)
        assert len(fast) == len(brute)
        assert [g.profile_key() for g in fast] == [g.profile_key() for g in brute]


def test_census_scan_collects_sorted_equilibria():
    game = BoundedBudgetGame([1, 1, 1])
    result = census_scan(game, "sum", collect_equilibria=True)
    assert result.equilibria == tuple(sorted(result.equilibria))
    assert result.report.num_equilibria == len(result.equilibria)
    graphs = result.equilibrium_graphs()
    assert all(game.is_realization(g) for g in graphs)


def test_census_scan_without_collection_has_no_equilibria_payload():
    game = BoundedBudgetGame([1, 1, 1])
    result = census_scan(game, "sum")
    assert result.equilibria is None
    with pytest.raises(GameError):
        result.equilibrium_graphs()


def test_brute_force_path_rejects_kernel_knobs():
    game = BoundedBudgetGame([1, 1, 1])
    with pytest.raises(GameError):
        exact_prices(game, "sum", incremental=False, symmetry=True)
    with pytest.raises(GameError):
        enumerate_equilibria(game, "sum", incremental=False, workers=2)


# ----------------------------------------------------------------------
# Golden equivalence: warm-started shards == cold shards, bit for bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("label,budgets", GOLDEN_INSTANCES)
@pytest.mark.parametrize("version", ["sum", "max"])
def test_warm_started_shards_bit_identical(label, budgets, version):
    """Shared-memory warm starts (parent snapshots each shard's start
    rank; shards attach instead of rebuilding) must not change a single
    bit of the census for any worker count."""
    game = BoundedBudgetGame(list(budgets))
    for workers in (1, 2, 4):
        cold = census_scan(
            game, version, workers=workers, pool=False, collect_equilibria=True
        )
        warm = census_scan(
            game, version, workers=workers, pool=True, collect_equilibria=True
        )
        assert warm.report == cold.report, f"{label}/{version}/workers={workers}"
        assert warm.equilibria == cold.equilibria


def test_warm_started_shards_actually_attach():
    from repro.core.enumeration import LAST_CENSUS_POOL_STATS

    game = BoundedBudgetGame([1] * 5)
    census_scan(game, "sum", workers=4, pool=True)
    assert LAST_CENSUS_POOL_STATS["shards"] == 4
    assert LAST_CENSUS_POOL_STATS["warm_attached"] == 4
    census_scan(game, "sum", workers=4, pool=False)
    assert LAST_CENSUS_POOL_STATS["warm_attached"] == 0


def test_weighted_warm_started_shards_bit_identical():
    from repro.core import weighted_census_scan
    from repro.experiments.exact_census import WEIGHTED_INSTANCES

    for label, budgets, w in WEIGHTED_INSTANCES:
        game = BoundedBudgetGame(list(budgets))
        for workers in (1, 3):
            cold = weighted_census_scan(
                game, w, workers=workers, pool=False, collect_equilibria=True
            )
            warm = weighted_census_scan(
                game, w, workers=workers, pool=True, collect_equilibria=True
            )
            assert warm == cold, f"{label}/workers={workers}"


# ----------------------------------------------------------------------
# Experiment surface
# ----------------------------------------------------------------------
def test_run_experiment_forwards_supported_overrides():
    from repro.experiments.exact_census import exact_census_experiment
    from repro.experiments.runner import run_experiment

    # Sharding through the runner surface never changes the numbers
    # (the promoted n=6 instance stays on the pruned kernel: the
    # unpruned walk belongs in benches, not tier-1).
    rep = run_experiment("EXACT-tiny", workers=2)
    baseline = run_experiment("EXACT-tiny")
    assert rep.rows == baseline.rows
    # symmetry=False forwards through the signature filter too; checked
    # on the golden battery where the unpruned walk is cheap.
    plain = run_experiment(
        "EXACT-tiny", instances=GOLDEN_INSTANCES, symmetry=False
    )
    pruned = exact_census_experiment(instances=GOLDEN_INSTANCES)
    assert plain.rows == pruned.rows


def test_extended_battery_includes_unit_n6():
    from repro.experiments.exact_census import exact_census_experiment

    rep = exact_census_experiment(
        instances=(("unit n=6", (1,) * 6),), max_profiles=20_000
    )
    by_version = {r["version"]: r for r in rep.rows}
    assert by_version["sum"]["equilibria"] == 120
    assert by_version["max"]["equilibria"] == 480
    assert by_version["sum"]["structure_thms"] is True
    assert by_version["max"]["structure_thms"] is True


def test_default_battery_is_the_promoted_extended_battery():
    """The formerly opt-in instances (unit n=6, mixed n=5) are default
    now; the golden battery stays the brute-force-affordable prefix."""
    from repro.experiments.exact_census import EXTENDED_INSTANCES

    labels = [label for label, _ in DEFAULT_INSTANCES]
    assert "unit n=6" in labels and "mixed n=5" in labels
    assert DEFAULT_INSTANCES[: len(GOLDEN_INSTANCES)] == GOLDEN_INSTANCES
    assert EXTENDED_INSTANCES == DEFAULT_INSTANCES


@pytest.mark.parametrize("version", ["sum", "max"])
def test_promoted_mixed_n5_knob_invariance(version):
    """mixed n=5 (576 profiles) is cheap enough to bridge the unpruned
    walk against every knob combination right here; the n=6 unpruned
    bridge lives in the census bench lane (it costs ~15 s/version)."""
    game = BoundedBudgetGame([2, 2, 1, 1, 0])
    reference = exact_prices(game, version)
    assert exact_prices(game, version, symmetry=True) == reference
    assert exact_prices(game, version, workers=3, symmetry=True) == reference
    assert (
        exact_prices(game, version, workers=2, symmetry=True, pool=True)
        == reference
    )


@pytest.mark.parametrize("version", ["sum", "max"])
def test_promoted_unit_n6_knob_invariance(version):
    """unit n=6's pruned-kernel knob combinations agree bit for bit
    (count-pinned at 120/480 elsewhere; the symmetry-off bridge runs in
    the census bench lane)."""
    game = BoundedBudgetGame([1] * 6)
    reference = exact_prices(game, version, symmetry=True, max_profiles=20_000)
    for kwargs in (
        {"workers": 3},
        {"workers": 2, "pool": True},
        {"workers": 4, "pool": False},
    ):
        got = exact_prices(
            game, version, symmetry=True, max_profiles=20_000, **kwargs
        )
        assert got == reference, kwargs


# ----------------------------------------------------------------------
# Stale census stats (regression): counters must describe the LAST run
# ----------------------------------------------------------------------
def test_unpooled_scan_reports_zero_pool_stats():
    # Regression: an unpooled scan after a pooled one used to keep (or
    # partially overwrite) the pooled run's counters, so dashboards and
    # the serve layer reported phantom warm attaches.
    from repro.core import last_census_pool_stats, last_census_runtime_stats

    game = BoundedBudgetGame([1] * 5)
    census_scan(game, "sum", workers=4, pool=True)
    pooled = last_census_pool_stats()
    assert pooled["shards"] == 4 and pooled["warm_attached"] == 4
    census_scan(game, "sum", workers=1, pool=False)
    assert all(v == 0 for v in last_census_pool_stats().values())
    assert last_census_runtime_stats() == {}


def test_weighted_unpooled_scan_reports_zero_pool_stats():
    from repro.core import last_census_pool_stats, weighted_census_scan
    from repro.experiments.exact_census import WEIGHTED_INSTANCES

    _, budgets, w = WEIGHTED_INSTANCES[0]
    census_scan(BoundedBudgetGame([1] * 5), "sum", workers=4, pool=True)
    assert last_census_pool_stats()["shards"] == 4
    weighted_census_scan(BoundedBudgetGame(list(budgets)), w, workers=1, pool=False)
    assert all(v == 0 for v in last_census_pool_stats().values())


def test_raising_scan_does_not_leak_prior_stats():
    from repro.core import last_census_pool_stats

    game = BoundedBudgetGame([1] * 5)
    census_scan(game, "sum", workers=4, pool=True)
    assert last_census_pool_stats()["warm_attached"] == 4
    with pytest.raises(GameError):
        census_scan(game, "no-such-version", workers=1)
    # The failed scan reset the side-channel at entry: nothing stale.
    assert all(v == 0 for v in last_census_pool_stats().values())


def test_census_stats_accessors_return_copies():
    from repro.core import last_census_pool_stats
    from repro.core.enumeration import LAST_CENSUS_POOL_STATS

    snap = last_census_pool_stats()
    assert snap is not LAST_CENSUS_POOL_STATS
    snap["shards"] = snap["shards"] + 777
    assert last_census_pool_stats()["shards"] != snap["shards"]
