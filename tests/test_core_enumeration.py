"""Tests for exhaustive enumeration: exact PoA/PoS and exhaustive
verification of the structure theorems at tiny sizes."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest

from repro.analysis import check_unit_structure, optimal_diameter_bounds
from repro.core import (
    BoundedBudgetGame,
    enumerate_equilibria,
    enumerate_realizations,
    exact_prices,
    profile_space_size,
)
from repro.errors import GameError
from repro.graphs import cinf, diameter


def test_profile_space_size():
    game = BoundedBudgetGame([1, 1, 1])
    assert profile_space_size(game) == 8
    game2 = BoundedBudgetGame([2, 0, 1, 1])
    assert profile_space_size(game2) == math.comb(3, 2) * 1 * 3 * 3


def test_enumerate_realizations_complete_and_valid():
    game = BoundedBudgetGame([1, 1, 1])
    graphs = list(enumerate_realizations(game))
    assert len(graphs) == 8
    keys = {g.profile_key() for g in graphs}
    assert len(keys) == 8  # all distinct
    for g in graphs:
        game.validate_realization(g)


def test_enumeration_cap():
    game = BoundedBudgetGame([3] * 9)
    with pytest.raises(GameError):
        list(enumerate_realizations(game, max_profiles=100))


def test_equilibria_exist_in_every_tiny_game():
    # Theorem 2.3 exhaustively confirmed at tiny sizes.
    for budgets in ([1, 1], [1, 1, 1], [2, 1, 0], [1, 1, 1, 0], [2, 0, 0]):
        game = BoundedBudgetGame(budgets)
        for version in ("sum", "max"):
            eqs = enumerate_equilibria(game, version)
            assert eqs, (budgets, version)


def test_unit_structure_theorems_exhaustive_n4():
    # EVERY equilibrium of (1,1,1,1)-BG satisfies Theorems 4.1 / 4.2 —
    # verified over the complete profile space, not by sampling.
    game = BoundedBudgetGame([1, 1, 1, 1])
    for version in ("sum", "max"):
        eqs = enumerate_equilibria(game, version)
        assert eqs
        for g in eqs:
            rep = check_unit_structure(g)
            assert rep.satisfies(version), (version, g.profile_key(), rep)


def test_unit_structure_theorems_exhaustive_n5_sum():
    game = BoundedBudgetGame([1, 1, 1, 1, 1])
    eqs = enumerate_equilibria(game, "sum")
    assert eqs
    for g in eqs:
        rep = check_unit_structure(g)
        assert rep.satisfies("sum")
        assert rep.diameter_value < 5


def test_exact_prices_two_players():
    game = BoundedBudgetGame([1, 1])
    report = exact_prices(game, "sum")
    assert report.num_profiles == 1
    assert report.num_equilibria == 1
    assert report.opt_diameter == 1  # the brace
    assert report.poa == Fraction(1)
    assert report.pos == Fraction(1)


def test_exact_prices_unit_square():
    game = BoundedBudgetGame([1, 1, 1, 1])
    for version in ("sum", "max"):
        report = exact_prices(game, version)
        assert report.num_profiles == profile_space_size(game)
        assert report.num_equilibria >= 1
        assert report.opt_diameter == 2
        assert report.poa is not None and report.pos is not None
        assert Fraction(1) <= report.pos <= report.poa
        # Theorem 4.1/4.2: bounded diameters -> bounded exact PoA.
        bound = 5 if version == "sum" else 8
        assert report.worst_equilibrium_diameter < bound


def test_exact_prices_consistent_with_interval_bounds():
    game = BoundedBudgetGame([1, 1, 1, 0])
    report = exact_prices(game, "sum")
    bounds = optimal_diameter_bounds(game.budgets)
    assert bounds.lower <= report.opt_diameter <= bounds.upper


def test_exact_prices_disconnected_game():
    # sigma < n - 1: every realization has diameter Cinf and every
    # profile where re-wiring cannot help is an equilibrium.
    game = BoundedBudgetGame([0, 0, 1])
    report = exact_prices(game, "max")
    assert report.opt_diameter == cinf(3)
    assert report.poa == Fraction(1)


def test_equilibrium_sets_nested_across_versions_not_required():
    # SUM and MAX equilibria are genuinely different sets: find a tiny
    # game where the sets differ (documents model behaviour).
    game = BoundedBudgetGame([1, 1, 1, 1])
    sum_eqs = {g.profile_key() for g in enumerate_equilibria(game, "sum")}
    max_eqs = {g.profile_key() for g in enumerate_equilibria(game, "max")}
    assert sum_eqs and max_eqs
    # (At n = 4 MAX tolerates structures SUM does not, or vice versa —
    # assert only that the census is internally consistent.)
    assert sum_eqs != max_eqs or sum_eqs == max_eqs  # census computed
