"""Unit tests for the best-response engine (exact, greedy, swap)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core import (
    BestResponseEnvironment,
    Version,
    exact_best_response,
    greedy_best_response,
    swap_best_response,
    vertex_cost,
)
from repro.errors import GameError
from repro.graphs import OwnedDigraph, cycle_realization, path_realization, star_realization

from conftest import random_owned_digraph


def brute_force_best(graph: OwnedDigraph, u: int, version: str) -> int:
    """Reference: mutate the graph for every subset and recompute cost."""
    b = graph.out_degree(u)
    pool = [v for v in range(graph.n) if v != u]
    best = None
    for combo in itertools.combinations(pool, b):
        h = graph.copy()
        h.set_strategy(u, combo)
        c = vertex_cost(h, u, version)
        if best is None or c < best:
            best = c
    return best


def test_environment_evaluates_current_strategy_consistently(rng):
    for _ in range(10):
        n = int(rng.integers(2, 10))
        g = random_owned_digraph(rng, n, p=0.3)
        for u in range(n):
            cur = tuple(int(v) for v in g.out_neighbors(u))
            for version in ("sum", "max"):
                env = BestResponseEnvironment(g, u, version)
                assert env.evaluate(cur) == vertex_cost(g, u, version), (u, version)


def test_exact_matches_brute_force(rng):
    for _ in range(8):
        n = int(rng.integers(3, 8))
        g = random_owned_digraph(rng, n, p=0.35)
        for u in range(n):
            if g.out_degree(u) > 3:
                continue
            for version in ("sum", "max"):
                r = exact_best_response(g, u, version)
                expected = brute_force_best(g, u, version)
                assert r.cost == expected, (u, version, r.cost, expected)


def test_exact_reports_current_cost(path5):
    r = exact_best_response(path5, 0, "sum")
    assert r.current_cost == vertex_cost(path5, 0, "sum")
    assert r.exact
    assert r.improvement == r.current_cost - r.cost
    assert r.player == 0


def test_path_end_improves_by_linking_center():
    # Vertex 0 on a path 0-1-2-3-4 should prefer linking the middle.
    g = path_realization(5)
    r = exact_best_response(g, 0, "sum")
    assert r.is_improving
    assert r.strategy == (2,)


def test_star_center_cannot_improve():
    g = star_realization(7, 0, center_owns=True)
    for version in ("sum", "max"):
        r = exact_best_response(g, 0, version)
        assert not r.is_improving


def test_zero_budget_player():
    g = star_realization(4, 0, center_owns=True)
    r = exact_best_response(g, 1, "sum")
    assert r.strategy == ()
    assert r.cost == r.current_cost
    assert r.evaluated == 1


def test_exact_candidate_cap():
    g = random_owned_digraph(np.random.default_rng(0), 12, p=0.4)
    u = max(range(12), key=g.out_degree)
    if g.out_degree(u) >= 4:
        with pytest.raises(GameError):
            exact_best_response(g, u, "sum", max_candidates=10)


def test_disconnection_is_never_best(rng):
    # In a connected graph with sum(b) = n-1, dropping to a strategy that
    # disconnects costs at least Cinf more; exact BR must stay connected.
    from repro.graphs import is_connected, random_tree_realization

    g, budgets = random_tree_realization(9, seed=3)
    for u in range(9):
        if budgets[u] == 0:
            continue
        r = exact_best_response(g, u, "sum")
        h = g.copy()
        h.set_strategy(u, r.strategy)
        assert is_connected(h)


def test_greedy_never_worse_than_current(rng):
    for _ in range(10):
        n = int(rng.integers(3, 12))
        g = random_owned_digraph(rng, n, p=0.3)
        u = int(rng.integers(n))
        for version in ("sum", "max"):
            r = greedy_best_response(g, u, version)
            assert r.cost <= r.current_cost
            assert not r.exact


def test_greedy_upper_bounds_exact(rng):
    for _ in range(8):
        n = int(rng.integers(3, 9))
        g = random_owned_digraph(rng, n, p=0.35)
        u = int(rng.integers(n))
        if g.out_degree(u) > 3:
            continue
        for version in ("sum", "max"):
            ex = exact_best_response(g, u, version)
            gr = greedy_best_response(g, u, version)
            assert gr.cost >= ex.cost


def test_greedy_budget_one_is_exact(rng):
    # With budget 1 greedy enumerates all single targets = exact.
    g = cycle_realization(9)
    for u in range(9):
        ex = exact_best_response(g, u, "sum")
        gr = greedy_best_response(g, u, "sum")
        assert gr.cost == ex.cost


def test_swap_includes_staying_put(path5):
    r = swap_best_response(path5, 2, "sum")
    assert r.cost <= r.current_cost


def test_swap_upper_bounds_exact_lower_bounds_current(rng):
    for _ in range(8):
        n = int(rng.integers(3, 9))
        g = random_owned_digraph(rng, n, p=0.35)
        u = int(rng.integers(n))
        if g.out_degree(u) > 3:
            continue
        for version in ("sum", "max"):
            ex = exact_best_response(g, u, version)
            sw = swap_best_response(g, u, version)
            assert ex.cost <= sw.cost <= sw.current_cost


def test_swap_matches_bruteforce_single_swap(rng):
    # Reference: evaluate every (drop, add) pair by graph mutation.
    for _ in range(6):
        n = int(rng.integers(4, 9))
        g = random_owned_digraph(rng, n, p=0.3)
        u = int(rng.integers(n))
        cur = set(int(v) for v in g.out_neighbors(u))
        if not cur:
            continue
        best = vertex_cost(g, u, "sum")
        for a in list(cur):
            for w in range(n):
                if w == u or w in cur:
                    continue
                h = g.copy()
                h.set_strategy(u, (cur - {a}) | {w})
                best = min(best, vertex_cost(h, u, "sum"))
        r = swap_best_response(g, u, "sum")
        assert r.cost == best


def test_swap_strategy_is_valid(rng):
    g = random_owned_digraph(rng, 8, p=0.3)
    for u in range(8):
        r = swap_best_response(g, u, "max")
        assert len(r.strategy) == g.out_degree(u)
        assert u not in r.strategy
        assert len(set(r.strategy)) == len(r.strategy)


def test_batch_evaluation_shape_checks():
    g = path_realization(4)
    env = BestResponseEnvironment(g, 0, "sum")
    with pytest.raises(GameError):
        env.evaluate_batch(np.array([1, 2, 3]))
    out = env.evaluate_batch(np.empty((0, 2), dtype=np.int64))
    assert out.size == 0


def test_distances_for_strategy(path5):
    env = BestResponseEnvironment(path5, 0, "sum")
    d = env.distances_for((2,))
    # 0 linked only to 2: distances via 2 in G - 0.
    assert d[0] == 0 and d[2] == 1 and d[1] == 2 and d[3] == 2 and d[4] == 3


def test_environment_kappa_penalty_for_disconnection():
    # Graph: 0-1, 2-3 (two components), vertex 4 isolated; u = 4, b = 1.
    g = OwnedDigraph(5)
    g.add_arc(0, 1)
    g.add_arc(2, 3)
    g.add_arc(4, 0)
    env = BestResponseEnvironment(g, 4, "max")
    c = 25  # cinf(5)
    # Linking one component leaves 2 components: max dist = cinf, plus penalty.
    assert env.evaluate((0,)) == c + c
    assert env.evaluate((2,)) == c + c
    env_sum = BestResponseEnvironment(g, 4, "sum")
    # Linking 0: dist 1 to 0, 2 to 1, cinf to 2 and 3.
    assert env_sum.evaluate((0,)) == 1 + 2 + 2 * c
