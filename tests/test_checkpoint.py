"""Tests for the engine-free shard checkpoint journal.

Covers the record frame (magic + length + CRC32 + JSON + newline),
journal replay semantics (stop at the first torn/corrupt byte, recover
the last good prefix), atomic compaction, and the run-manifest resume
handshake — all without touching the census engine: records are
self-describing by design.
"""

from __future__ import annotations

import os

import pytest

from repro.core.checkpoint import (
    JournalReplay,
    RunManifest,
    ShardCheckpoint,
    append_record,
    compact_journal,
    decode_record,
    encode_record,
    read_manifest,
    replay_journal,
    shard_journal_path,
    write_manifest,
)
from repro.errors import CheckpointError
from repro.parallel.faults import corrupt_frame


def _record(next_rank: int = 40, **kwargs) -> ShardCheckpoint:
    base = dict(
        shard_id=3,
        lo=10,
        hi=90,
        next_rank=next_rank,
        attempt=1,
        done=False,
        counters={"count": 30, "eq_count": 4, "opt": None},
        eq_profiles=(((0,), (1, 2), ()), ((2,), (), (0, 1))),
        orbit_vals=(7, 11, 13),
    )
    base.update(kwargs)
    return ShardCheckpoint(**base)


# ----------------------------------------------------------------------
# Record round-trip + validation
# ----------------------------------------------------------------------
def test_record_round_trip():
    rec = _record()
    assert decode_record(encode_record(rec)) == rec


def test_record_round_trip_minimal():
    rec = ShardCheckpoint(shard_id=0, lo=0, hi=5, next_rank=5, done=True)
    assert decode_record(encode_record(rec)) == rec
    assert rec.eq_profiles is None and rec.orbit_vals is None


def test_record_orbit_key_format_round_trips():
    rec = _record(orbit_key_format=2)
    assert decode_record(encode_record(rec)).orbit_key_format == 2
    rec1 = _record(orbit_key_format=1)
    assert decode_record(encode_record(rec1)).orbit_key_format == 1


def test_record_without_format_field_decodes_as_v1():
    """Journals written before key-format versioning are v1 (64-bit)."""
    import json

    rec = _record()
    data = encode_record(rec)
    start = data.index(b"{")
    obj = json.loads(data[start : data.rindex(b"}") + 1])
    assert obj["orbit_key_format"] == 2
    del obj["orbit_key_format"]
    # Re-frame the stripped payload exactly as append_record would.
    import binascii
    import struct

    payload = json.dumps(obj, separators=(",", ":")).encode()
    frame = (
        data[:4]
        + struct.pack("<I", len(payload))
        + struct.pack("<I", binascii.crc32(payload) & 0xFFFFFFFF)
        + payload
        + b"\n"
    )
    assert decode_record(frame).orbit_key_format == 1


def test_record_rank_outside_shard_rejected():
    with pytest.raises(CheckpointError):
        ShardCheckpoint(shard_id=0, lo=10, hi=20, next_rank=9)
    with pytest.raises(CheckpointError):
        ShardCheckpoint(shard_id=0, lo=10, hi=20, next_rank=21)


def test_decode_rejects_corrupt_and_trailing_bytes():
    data = encode_record(_record())
    with pytest.raises(CheckpointError):
        decode_record(corrupt_frame(data))
    with pytest.raises(CheckpointError):
        decode_record(data + b"x")
    with pytest.raises(CheckpointError):
        decode_record(data[:-3])


# ----------------------------------------------------------------------
# Journal replay / compaction
# ----------------------------------------------------------------------
def test_journal_append_and_replay(tmp_path):
    path = shard_journal_path(tmp_path, 3)
    assert path.name == "shard-0003.journal"
    recs = [_record(next_rank=r) for r in (20, 40, 60)]
    for r in recs:
        append_record(path, r)
    replay = replay_journal(path)
    assert isinstance(replay, JournalReplay)
    assert replay.records == tuple(recs)
    assert replay.last == recs[-1]
    assert not replay.truncated
    assert replay.good_bytes == path.stat().st_size


def test_missing_journal_replays_empty(tmp_path):
    replay = replay_journal(tmp_path / "absent.journal")
    assert replay.records == () and replay.last is None
    assert replay.good_bytes == 0 and not replay.truncated


def test_torn_tail_recovers_last_good_record(tmp_path):
    path = shard_journal_path(tmp_path, 0)
    append_record(path, _record(next_rank=20))
    append_record(path, _record(next_rank=40))
    data = path.read_bytes()
    good = replay_journal(path).good_bytes
    # Tear the second frame mid-write (simulated crash during append).
    path.write_bytes(data[: good - 5])
    replay = replay_journal(path)
    assert replay.truncated
    assert replay.last == _record(next_rank=20)


def test_corrupt_frame_bounds_the_good_prefix(tmp_path):
    path = shard_journal_path(tmp_path, 0)
    append_record(path, _record(next_rank=20))
    with open(path, "ab") as fh:
        fh.write(corrupt_frame(encode_record(_record(next_rank=40))))
    # A record appended *after* the corrupt frame is unreachable: the
    # replay cannot trust anything past the first bad byte.
    append_record(path, _record(next_rank=60))
    replay = replay_journal(path)
    assert replay.truncated
    assert replay.last == _record(next_rank=20)


def test_compact_drops_tail_atomically(tmp_path):
    path = shard_journal_path(tmp_path, 0)
    append_record(path, _record(next_rank=20))
    append_record(path, _record(next_rank=40))
    path.write_bytes(path.read_bytes()[:-7])
    compacted = compact_journal(path)
    assert not compacted.truncated
    assert compacted.last == _record(next_rank=20)
    # On disk the journal is now fully valid and append-able again.
    append_record(path, _record(next_rank=55))
    replay = replay_journal(path)
    assert not replay.truncated
    assert [r.next_rank for r in replay.records] == [20, 55]


def test_compact_is_noop_on_valid_journal(tmp_path):
    path = shard_journal_path(tmp_path, 0)
    append_record(path, _record(next_rank=20))
    before = path.stat().st_mtime_ns
    bytes_before = path.read_bytes()
    compact_journal(path)
    assert path.read_bytes() == bytes_before
    assert path.stat().st_mtime_ns == before  # no rewrite happened


# ----------------------------------------------------------------------
# Run manifest
# ----------------------------------------------------------------------
def _manifest(**kwargs) -> RunManifest:
    base = dict(
        kind="census",
        budgets=(1, 1, 1, 1, 1),
        total=1024,
        shards=((0, 512), (512, 1024)),
        version="max",
        weights=None,
        symmetry=True,
        collect=False,
    )
    base.update(kwargs)
    return RunManifest(**base)


def test_manifest_round_trip(tmp_path):
    manifest = _manifest()
    write_manifest(tmp_path, manifest)
    assert read_manifest(tmp_path) == manifest


def test_manifest_round_trip_weighted(tmp_path):
    manifest = _manifest(
        kind="weighted_census", version=None, weights=(5, 1, 1, 1, 1)
    )
    write_manifest(tmp_path, manifest)
    assert read_manifest(tmp_path) == manifest


def test_manifest_round_trip_sampled(tmp_path):
    manifest = _manifest(
        kind="sampled_census",
        symmetry=False,
        seed=42,
        sample_method="stratified",
    )
    write_manifest(tmp_path, manifest)
    got = read_manifest(tmp_path)
    assert got == manifest
    assert got.seed == 42 and got.sample_method == "stratified"
    # A resume with another seed or draw method must not match.
    assert got != _manifest(
        kind="sampled_census", symmetry=False, seed=43,
        sample_method="stratified",
    )
    assert got != _manifest(
        kind="sampled_census", symmetry=False, seed=42,
        sample_method="uniform",
    )


def test_manifest_missing_raises(tmp_path):
    with pytest.raises(CheckpointError):
        read_manifest(tmp_path)


def test_manifest_malformed_raises(tmp_path):
    write_manifest(tmp_path, _manifest())
    path = os.path.join(tmp_path, "MANIFEST.json")
    with open(path, "w") as fh:
        fh.write('{"kind": "census"}')
    with pytest.raises(CheckpointError):
        read_manifest(tmp_path)


def test_manifest_detects_changed_decomposition(tmp_path):
    write_manifest(tmp_path, _manifest())
    # A caller resuming with a different shard split must not match.
    other = _manifest(shards=((0, 256), (256, 512), (512, 1024)))
    assert read_manifest(tmp_path) != other
