"""Tests for the parallel executor and sweep framework."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.graphs import OwnedDigraph, all_pairs_distances
from repro.parallel import (
    SweepSpec,
    SweepTask,
    aggregate_max,
    aggregate_mean,
    clear_distance_caches,
    contiguous_shards,
    cpu_workers,
    parallel_map,
    run_sweep,
    shared_distance_cache,
)


def _square(x: int) -> int:
    return x * x


def _seeded_random(task: SweepTask) -> dict:
    rng = np.random.default_rng(task.seed)
    return {"value": float(rng.random()), "n2": task.params["n"] ** 2}


def test_parallel_map_serial():
    assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]
    assert parallel_map(_square, []) == []


def test_parallel_map_processes_match_serial():
    tasks = list(range(24))
    serial = parallel_map(_square, tasks, processes=1)
    parallel = parallel_map(_square, tasks, processes=2)
    assert serial == parallel


def test_contiguous_shards_cover_exactly():
    shards = contiguous_shards(10, 3)
    assert shards == [(0, 4), (4, 7), (7, 10)]
    assert contiguous_shards(6, 3) == [(0, 2), (2, 4), (4, 6)]


def test_contiguous_shards_more_parts_than_items():
    """Regression guard: requesting more shards than rank-space items
    must clamp to one item per shard — an empty (lo == hi) shard would
    checkpoint/journal/merge as a vacuous unit of work downstream."""
    assert contiguous_shards(3, 8) == [(0, 1), (1, 2), (2, 3)]
    assert contiguous_shards(1, 4) == [(0, 1)]
    assert contiguous_shards(0, 4) == []
    for total, parts in ((3, 8), (1, 4), (5, 5), (2, 7)):
        shards = contiguous_shards(total, parts)
        assert all(lo < hi for lo, hi in shards)
        assert [r for lo, hi in shards for r in range(lo, hi)] == list(
            range(total)
        )


def test_contiguous_shards_validation():
    with pytest.raises(ReproError):
        contiguous_shards(-1, 2)
    with pytest.raises(ReproError):
        contiguous_shards(5, 0)


def test_cpu_workers():
    assert cpu_workers(1) == 1
    assert cpu_workers(None) >= 1
    with pytest.raises(ReproError):
        cpu_workers(0)


def test_sweep_spec_tasks():
    spec = SweepSpec(axes={"n": [5, 10], "v": ["a"]}, replications=3, base_seed=1)
    tasks = spec.tasks()
    assert len(tasks) == 6
    # Unique deterministic seeds.
    seeds = [t.seed for t in tasks]
    assert len(set(seeds)) == 6
    assert tasks[0].params == {"n": 5, "v": "a", "replication": 0}
    # Rebuilding gives identical seeds.
    assert [t.seed for t in spec.tasks()] == seeds


def test_sweep_spec_validation():
    with pytest.raises(ReproError):
        SweepSpec(axes={}, replications=1)
    with pytest.raises(ReproError):
        SweepSpec(axes={"n": []}, replications=1)
    with pytest.raises(ReproError):
        SweepSpec(axes={"n": [1]}, replications=0)


def test_run_sweep_merges_params():
    spec = SweepSpec(axes={"n": [2, 3]}, replications=2, base_seed=9)
    records = run_sweep(_seeded_random, spec)
    assert len(records) == 4
    for r in records:
        assert r["n2"] == r["n"] ** 2
        assert "seed" in r and "replication" in r


def test_run_sweep_serial_parallel_identical():
    spec = SweepSpec(axes={"n": [2, 3, 4]}, replications=2, base_seed=3)
    serial = run_sweep(_seeded_random, spec, processes=1)
    parallel = run_sweep(_seeded_random, spec, processes=2)
    assert serial == parallel


# ----------------------------------------------------------------------
# shared_distance_cache keying (regression: was keyed by instance size)
# ----------------------------------------------------------------------
def _path_graph(n: int) -> OwnedDigraph:
    g = OwnedDigraph(n)
    for i in range(n - 1):
        g.add_arc(i, i + 1)
    return g


def _star_graph(n: int) -> OwnedDigraph:
    g = OwnedDigraph(n)
    for i in range(1, n):
        g.add_arc(0, i)
    return g


def test_same_size_instances_get_distinct_caches():
    """Regression: the cache pool was keyed by instance *size*, so two
    same-size instances aliased one cache object — interleaved use kept
    rebinding it back and forth, and a caller holding "its" cache could
    silently find it bound to another task's graph."""
    clear_distance_caches()
    try:
        path = _path_graph(6)
        star = _star_graph(6)
        c_path = shared_distance_cache(path)
        c_star = shared_distance_cache(star)
        assert c_path is not c_star
        assert c_path.graph is path
        assert c_star.graph is star
        # Re-requesting either instance returns its own cache, still
        # bound to it, with no rebind thrash in between.
        assert shared_distance_cache(path) is c_path
        assert c_path.graph is path
        assert np.array_equal(
            c_path.base().distances(), all_pairs_distances(path.undirected_csr())
        )
        assert np.array_equal(
            c_star.base().distances(), all_pairs_distances(star.undirected_csr())
        )
    finally:
        clear_distance_caches()


def test_distinct_engine_kwargs_get_distinct_caches():
    clear_distance_caches()
    try:
        g = _path_graph(5)
        plain = shared_distance_cache(g)
        adaptive = shared_distance_cache(g, dirty_fraction="adaptive")
        assert plain is not adaptive
    finally:
        clear_distance_caches()


def test_evicted_cache_buffers_are_recycled():
    """Beyond the LRU bound, evicted caches retire and rebind to the
    next same-size request instead of being rebuilt from nothing."""
    clear_distance_caches()
    try:
        from repro.parallel.sweep import _MAX_LIVE_CACHES

        first = _path_graph(7)
        c_first = shared_distance_cache(first)
        c_first.base()
        c_first.player(0)
        # Push exactly one entry past the LRU bound: `first` retires.
        for _ in range(_MAX_LIVE_CACHES):
            shared_distance_cache(_star_graph(7))
        recycled = shared_distance_cache(_path_graph(7))
        assert recycled is c_first  # same object, rebound
        # Retirement trimmed the per-player family; the base buffer
        # survived and is resynced on access.
        assert recycled.stats()["player_engines"] == 0
        assert np.array_equal(
            recycled.base().distances(),
            all_pairs_distances(first.undirected_csr()),
        )
    finally:
        clear_distance_caches()


def test_aggregations():
    records = [
        {"n": 5, "d": 3},
        {"n": 5, "d": 7},
        {"n": 10, "d": 4},
    ]
    assert aggregate_max(records, "n", "d") == {5: 7, 10: 4}
    assert aggregate_mean(records, "n", "d") == {5: 5.0, 10: 4.0}
