"""Tests for the parallel executor and sweep framework."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.parallel import (
    SweepSpec,
    SweepTask,
    aggregate_max,
    aggregate_mean,
    cpu_workers,
    parallel_map,
    run_sweep,
)


def _square(x: int) -> int:
    return x * x


def _seeded_random(task: SweepTask) -> dict:
    rng = np.random.default_rng(task.seed)
    return {"value": float(rng.random()), "n2": task.params["n"] ** 2}


def test_parallel_map_serial():
    assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]
    assert parallel_map(_square, []) == []


def test_parallel_map_processes_match_serial():
    tasks = list(range(24))
    serial = parallel_map(_square, tasks, processes=1)
    parallel = parallel_map(_square, tasks, processes=2)
    assert serial == parallel


def test_cpu_workers():
    assert cpu_workers(1) == 1
    assert cpu_workers(None) >= 1
    with pytest.raises(ReproError):
        cpu_workers(0)


def test_sweep_spec_tasks():
    spec = SweepSpec(axes={"n": [5, 10], "v": ["a"]}, replications=3, base_seed=1)
    tasks = spec.tasks()
    assert len(tasks) == 6
    # Unique deterministic seeds.
    seeds = [t.seed for t in tasks]
    assert len(set(seeds)) == 6
    assert tasks[0].params == {"n": 5, "v": "a", "replication": 0}
    # Rebuilding gives identical seeds.
    assert [t.seed for t in spec.tasks()] == seeds


def test_sweep_spec_validation():
    with pytest.raises(ReproError):
        SweepSpec(axes={}, replications=1)
    with pytest.raises(ReproError):
        SweepSpec(axes={"n": []}, replications=1)
    with pytest.raises(ReproError):
        SweepSpec(axes={"n": [1]}, replications=0)


def test_run_sweep_merges_params():
    spec = SweepSpec(axes={"n": [2, 3]}, replications=2, base_seed=9)
    records = run_sweep(_seeded_random, spec)
    assert len(records) == 4
    for r in records:
        assert r["n2"] == r["n"] ** 2
        assert "seed" in r and "replication" in r


def test_run_sweep_serial_parallel_identical():
    spec = SweepSpec(axes={"n": [2, 3, 4]}, replications=2, base_seed=3)
    serial = run_sweep(_seeded_random, spec, processes=1)
    parallel = run_sweep(_seeded_random, spec, processes=2)
    assert serial == parallel


def test_aggregations():
    records = [
        {"n": 5, "d": 3},
        {"n": 5, "d": 7},
        {"n": 10, "d": 4},
    ]
    assert aggregate_max(records, "n", "d") == {5: 7, 10: 4}
    assert aggregate_mean(records, "n", "d") == {5: 5.0, 10: 4.0}
