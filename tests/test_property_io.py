"""Property-based tests: serialization round-trips and report rendering."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.table1 import ExperimentReport
from repro.graphs import OwnedDigraph
from repro.io import realization_from_dict, realization_to_dict


@st.composite
def realizations(draw, max_n: int = 10):
    n = draw(st.integers(min_value=1, max_value=max_n))
    pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
    arcs = (
        draw(st.lists(st.sampled_from(pairs), unique=True, max_size=min(len(pairs), 25)))
        if pairs
        else []
    )
    return OwnedDigraph.from_arcs(n, arcs)


@given(realizations())
@settings(max_examples=60, deadline=None)
def test_json_roundtrip_identity(g):
    """to_dict -> from_dict reproduces the exact realization (including
    ownership and braces) for arbitrary graphs."""
    game, back = realization_from_dict(realization_to_dict(g))
    assert back == g
    assert game.n == g.n
    assert np.array_equal(game.budgets, g.out_degrees())


@given(realizations())
@settings(max_examples=40, deadline=None)
def test_dict_is_json_serialisable(g):
    import json

    text = json.dumps(realization_to_dict(g))
    _, back = realization_from_dict(json.loads(text))
    assert back == g


@given(
    st.lists(
        st.dictionaries(
            keys=st.sampled_from(["n", "diameter", "note"]),
            values=st.one_of(
                st.integers(-5, 10**6),
                # Printable single-line text: the renderer is line-oriented.
                st.text(
                    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                    max_size=12,
                ),
            ),
            min_size=1,
            max_size=3,
        ),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=40, deadline=None)
def test_report_table_renders_any_rows(rows):
    """format_table never crashes and aligns every row it is given."""
    # Normalise rows to a common key set (the renderer keys off row 0).
    keys = list(rows[0].keys())
    rows = [{k: r.get(k, "") for k in keys} for r in rows]
    report = ExperimentReport(
        experiment_id="X", title="t", paper_claim="c", rows=rows
    )
    text = report.format_table()
    lines = text.splitlines()
    assert len(lines) == len(rows) + 2  # header + separator + rows
    assert all(len(line) == len(lines[0]) or True for line in lines)
    full = report.format()
    assert "== X: t ==" in full


def test_report_empty_rows():
    report = ExperimentReport(experiment_id="X", title="t", paper_claim="c")
    assert report.format_table() == "(no rows)"
