"""Tests for the Theorem 2.3 equilibrium constructions (all cases)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constructions import classify_case, construct_equilibrium
from repro.core import BoundedBudgetGame, certify_equilibrium
from repro.errors import ConstructionError
from repro.graphs import cinf, diameter, is_connected


def test_classify_cases():
    # sigma >= n-1, b_max >= z.
    assert classify_case([1, 1, 1]) == 1
    # sigma >= n-1, b_max < z: many zeros, small max.
    assert classify_case([0, 0, 0, 0, 2, 2, 2]) == 2
    # sigma < n-1.
    assert classify_case([0, 0, 0, 1]) == 3


def test_case1_hub_structure():
    ec = construct_equilibrium([1, 1, 1, 1])
    assert ec.case == 1
    assert is_connected(ec.graph)
    assert diameter(ec.graph) <= 2


def test_case1_is_equilibrium_both_versions(rng):
    for _ in range(10):
        n = int(rng.integers(2, 9))
        b = rng.integers(0, n, size=n)
        if classify_case(b) != 1:
            continue
        ec = construct_equilibrium(b)
        BoundedBudgetGame(b).validate_realization(ec.graph)
        for version in ("sum", "max"):
            cert = certify_equilibrium(ec.graph, version, method="exact")
            assert cert.is_equilibrium, (b.tolist(), version, cert.summary())


def test_case2_figure1_parameters():
    budgets = [0] * 16 + [2, 5, 5, 5, 5, 5]
    ec = construct_equilibrium(budgets)
    assert ec.case == 2
    assert is_connected(ec.graph)
    assert diameter(ec.graph) <= 4
    BoundedBudgetGame(budgets).validate_realization(ec.graph)
    for version in ("sum", "max"):
        cert = certify_equilibrium(ec.graph, version, method="exact")
        assert cert.is_equilibrium, cert.summary()


def test_case2_no_braces():
    # The paper's construction creates no brace.
    budgets = [0] * 16 + [2, 5, 5, 5, 5, 5]
    ec = construct_equilibrium(budgets)
    assert ec.graph.braces() == []


def test_case2_random_instances(rng):
    found = 0
    for _ in range(60):
        n = int(rng.integers(6, 12))
        z = int(rng.integers(n // 2 + 1, n - 1))
        rich = n - z
        b = np.zeros(n, dtype=np.int64)
        # Rich players get budgets < z but summing to >= n - 1.
        need = n - 1
        maxb = min(z - 1, n - 1)
        if rich * maxb < need:
            continue
        b[z:] = maxb
        if classify_case(b) != 2:
            continue
        found += 1
        ec = construct_equilibrium(b)
        BoundedBudgetGame(np.sort(b)).validate_realization(
            construct_equilibrium(np.sort(b)).graph
        )
        for version in ("sum", "max"):
            cert = certify_equilibrium(ec.graph, version, method="exact")
            assert cert.is_equilibrium, (b.tolist(), version, cert.summary())
    assert found >= 3


def test_case3_disconnected_structure():
    b = [0, 0, 0, 1]
    ec = construct_equilibrium(b)
    assert ec.case == 3
    assert not is_connected(ec.graph)
    assert diameter(ec.graph) == cinf(4)


def test_case3_is_equilibrium(rng):
    for b in ([0, 0, 0, 1], [0, 0, 1, 1, 0], [0, 0, 0, 2, 0, 0]):
        ec = construct_equilibrium(b)
        if ec.case != 3:
            continue
        game = BoundedBudgetGame(sorted(b))
        for version in ("sum", "max"):
            cert = certify_equilibrium(ec.graph, version, method="exact")
            assert cert.is_equilibrium, (b, version, cert.summary())


def test_unsorted_budgets_map_back():
    b = [1, 0, 2, 1, 0, 1]
    ec = construct_equilibrium(b)
    assert ec.graph.out_degrees().tolist() == b
    assert len(ec.sorted_order) == len(b)


def test_invalid_budgets():
    with pytest.raises(ConstructionError):
        construct_equilibrium([])
    with pytest.raises(ConstructionError):
        construct_equilibrium([3, 0, 0])
    with pytest.raises(ConstructionError):
        construct_equilibrium([-1, 1])


def test_single_player():
    ec = construct_equilibrium([0])
    assert ec.graph.n == 1
    assert ec.graph.num_arcs == 0


def test_two_players():
    for b in ([0, 1], [1, 1]):
        ec = construct_equilibrium(b)
        for version in ("sum", "max"):
            cert = certify_equilibrium(ec.graph, version, method="exact")
            assert cert.is_equilibrium


def test_diameter_bound_price_of_stability(rng):
    # Theorem 2.3: whenever sigma >= n - 1 the construction has O(1)
    # diameter (at most 4).
    for _ in range(20):
        n = int(rng.integers(2, 12))
        b = rng.integers(0, n, size=n)
        if int(b.sum()) < n - 1:
            continue
        ec = construct_equilibrium(b)
        assert diameter(ec.graph) <= 4, (b.tolist(), diameter(ec.graph))
