"""Unit tests for equilibrium certificates."""

from __future__ import annotations

import pytest

from repro.core import Version, certify_equilibrium
from repro.graphs import path_realization, star_realization


def test_certificate_positive():
    g = star_realization(6, 0, center_owns=True)
    cert = certify_equilibrium(g, "sum", method="exact")
    assert cert.is_equilibrium
    assert cert.violators == ()
    assert cert.max_regret() == 0
    assert len(cert.witnesses) == 6
    assert "NASH EQUILIBRIUM" in cert.summary()


def test_certificate_negative_names_violators():
    g = path_realization(5)
    cert = certify_equilibrium(g, "sum", method="exact")
    assert not cert.is_equilibrium
    assert 0 in cert.violators
    assert cert.max_regret() > 0
    assert "NOT an equilibrium" in cert.summary()


def test_lemma_shortcut_recorded():
    g = star_realization(6, 0, center_owns=True)
    cert = certify_equilibrium(g, "sum", method="exact", use_lemma=True)
    lemma_players = [w for w in cert.witnesses if w.via_lemma]
    assert len(lemma_players) == 6  # whole star satisfies Lemma 2.2
    assert all(w.evaluated == 0 for w in lemma_players)
    no_lemma = certify_equilibrium(g, "sum", method="exact", use_lemma=False)
    assert all(not w.via_lemma for w in no_lemma.witnesses)
    assert no_lemma.total_evaluated > 0


def test_lemma_and_search_agree(rng):
    from conftest import random_owned_digraph

    for _ in range(6):
        g = random_owned_digraph(rng, int(rng.integers(3, 8)), p=0.4)
        if any(g.out_degree(u) > 3 for u in range(g.n)):
            continue
        with_lemma = certify_equilibrium(g, "max", method="exact", use_lemma=True)
        without = certify_equilibrium(g, "max", method="exact", use_lemma=False)
        assert with_lemma.is_equilibrium == without.is_equilibrium


def test_players_subset_certification():
    g = path_realization(4)
    cert = certify_equilibrium(g, "sum", method="exact", players=[3])
    assert len(cert.witnesses) == 1
    assert cert.witnesses[0].player == 3
    assert cert.is_equilibrium  # zero-budget player is trivially stable


def test_witness_fields_consistent():
    g = path_realization(5)
    cert = certify_equilibrium(g, "max", method="exact", use_lemma=False)
    for w in cert.witnesses:
        assert w.best_cost <= w.current_cost or w.is_stable
        assert len(w.best_strategy) == g.out_degree(w.player)


def test_swap_certificate_weaker_than_exact():
    # A swap certificate can pass where exact finds a deviation, never
    # the other way around.
    from conftest import random_owned_digraph
    import numpy as np

    rng = np.random.default_rng(7)
    for _ in range(10):
        g = random_owned_digraph(rng, int(rng.integers(3, 8)), p=0.4)
        if any(g.out_degree(u) > 3 for u in range(g.n)):
            continue
        exact = certify_equilibrium(g, "sum", method="exact")
        swap = certify_equilibrium(g, "sum", method="swap")
        if exact.is_equilibrium:
            assert swap.is_equilibrium
