"""Tests for the Theorem 3.2 spider (MAX tree equilibria, diameter Θ(n))."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constructions import spider_budgets, spider_equilibrium
from repro.core import BoundedBudgetGame, certify_equilibrium, is_equilibrium
from repro.errors import ConstructionError
from repro.graphs import diameter, eccentricities, is_tree


def test_structure():
    inst = spider_equilibrium(3)
    assert inst.n == 10
    assert is_tree(inst.graph)
    assert diameter(inst.graph) == 6
    assert inst.diameter_value == 6
    assert inst.center == 0
    assert len(inst.legs) == 3
    for leg in inst.legs:
        assert len(leg) == 3


def test_budgets_form_tree_game():
    b = spider_budgets(4)
    game = BoundedBudgetGame(b)
    assert game.is_tree_game
    # Inner leg vertices own 2 arcs, leg ends and the center own 0.
    assert sorted(b.tolist(), reverse=True)[:3] == [2, 2, 2]
    assert (b == 0).sum() == 4  # center + three leg ends


@pytest.mark.parametrize("k", [1, 2, 3, 5])
def test_is_max_equilibrium(k):
    inst = spider_equilibrium(k)
    cert = certify_equilibrium(inst.graph, "max", method="exact")
    assert cert.is_equilibrium, cert.summary()


def test_not_sum_equilibrium_for_large_k():
    # For long legs the spider is NOT a SUM equilibrium (Theorem 3.3
    # forbids linear-diameter SUM trees): inner vertices would rather
    # link deep into the legs.
    inst = spider_equilibrium(6)
    assert not is_equilibrium(inst.graph, "sum")


def test_diameter_is_linear():
    ns, ds = [], []
    for k in (2, 4, 8):
        inst = spider_equilibrium(k)
        ns.append(inst.n)
        ds.append(diameter(inst.graph))
    ratios = [d / n for n, d in zip(ns, ds)]
    # d = 2k = 2(n-1)/3.
    for r in ratios:
        assert abs(r - 2 / 3) < 0.1


def test_center_eccentricity():
    inst = spider_equilibrium(4)
    ecc = eccentricities(inst.graph)
    assert ecc[inst.center] == 4  # center is k away from leg ends


def test_invalid_k():
    with pytest.raises(ConstructionError):
        spider_equilibrium(0)


def test_generalized_spider_more_legs():
    # Any number of legs >= 3 remains a MAX equilibrium.
    for legs in (4, 5):
        inst = spider_equilibrium(2, legs=legs)
        assert inst.n == legs * 2 + 1
        assert len(inst.legs) == legs
        assert is_equilibrium(inst.graph, "max")


def test_two_legs_rejected_and_genuinely_unstable():
    # The builder refuses legs < 3 ...
    with pytest.raises(ConstructionError):
        spider_equilibrium(3, legs=2)
    # ... and rightly so: the hand-built 2-leg "spider" (a path with the
    # inner vertex linking the center) is NOT a MAX equilibrium.
    from repro.graphs import OwnedDigraph

    k = 3
    g = OwnedDigraph(2 * k + 1)
    for j in range(2):
        base = 1 + j * k
        g.add_arc(base, 0)
        for i in range(k - 1):
            g.add_arc(base + i, base + i + 1)
    assert not is_equilibrium(g, "max")
