"""Tests for JSON serialization and text rendering."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import GraphError, ReproError
from repro.graphs import (
    OwnedDigraph,
    adjacency_table,
    degree_summary,
    path_realization,
    to_dot,
)
from repro.io import (
    load_realization,
    realization_from_dict,
    realization_to_dict,
    save_realization,
)


def test_roundtrip_dict():
    g = path_realization(5)
    data = realization_to_dict(g)
    game, back = realization_from_dict(data)
    assert back == g
    assert game.budgets.tolist() == g.out_degrees().tolist()


def test_roundtrip_file(tmp_path):
    g = OwnedDigraph.from_arcs(4, [(0, 1), (1, 2), (3, 0), (3, 1)])
    path = tmp_path / "realization.json"
    save_realization(g, path)
    game, back = load_realization(path)
    assert back == g
    # File is human-readable JSON.
    raw = json.loads(path.read_text())
    assert raw["format"] == "repro-bbncg/1"
    assert raw["budgets"] == [1, 1, 0, 2]


def test_from_dict_validation():
    with pytest.raises(ReproError):
        realization_from_dict({"format": "other"})
    with pytest.raises(ReproError):
        realization_from_dict({"format": "repro-bbncg/1", "budgets": [1, 0]})
    with pytest.raises(ReproError):
        realization_from_dict(
            {"format": "repro-bbncg/1", "budgets": [1, 0], "arcs": [[0]]}
        )


def test_load_invalid_json(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(ReproError):
        load_realization(path)


def test_budget_arc_consistency_enforced():
    # Arcs not matching the recorded budgets must be rejected.
    data = {"format": "repro-bbncg/1", "budgets": [2, 0], "arcs": [[0, 1]]}
    with pytest.raises(Exception):
        realization_from_dict(data)


def test_to_dot_deterministic():
    g = OwnedDigraph.from_arcs(3, [(0, 1), (2, 0)])
    dot = to_dot(g)
    assert dot == to_dot(g)
    assert "v0 -> v1;" in dot
    assert "v2 -> v0;" in dot
    assert dot.startswith("digraph realization {")


def test_to_dot_labels_and_highlight():
    g = path_realization(3)
    dot = to_dot(g, labels={0: "w"}, highlight={1})
    assert 'label="w"' in dot
    assert "fillcolor" in dot


def test_adjacency_table():
    g = OwnedDigraph.from_arcs(3, [(0, 1), (0, 2)])
    table = adjacency_table(g)
    assert "0 -> [1, 2]" in table
    assert "1 -> []" in table
    big = OwnedDigraph(100)
    with pytest.raises(GraphError):
        adjacency_table(big)


def test_degree_summary():
    g = OwnedDigraph.from_arcs(3, [(0, 1), (1, 0), (1, 2)])
    text = degree_summary(g)
    assert "n=3" in text
    assert "braces=1" in text
