"""Integration tests: end-to-end machine checks of the paper's theorems.

Each test exercises the full stack (generators -> dynamics -> exact
certification -> structural analysis) on one theorem. These are the
"does the reproduction actually reproduce the paper" tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    check_connectivity_theorem,
    check_unit_structure,
    theorem_3_3_bound,
    verify_sum_equilibrium_inequality,
)
from repro.constructions import (
    binary_tree_equilibrium,
    construct_equilibrium,
    overlap_graph_equilibrium,
    spider_equilibrium,
)
from repro.core import (
    BoundedBudgetGame,
    best_response_dynamics,
    certify_equilibrium,
    exact_best_response,
)
from repro.graphs import (
    cinf,
    diameter,
    is_connected,
    is_tree,
    random_budgets_with_sum,
    random_tree_realization,
    uniform_budgets,
    unit_budgets,
)
from repro.optimization import exact_k_center, k_center_via_best_response
from repro.graphs import build_csr, distance_matrix


class TestTheorem21:
    """Best response embeds k-center / k-median."""

    def test_k_center_equals_game_best_response(self, rng):
        import networkx as nx

        G = nx.petersen_graph()
        edges = list(G.edges())
        csr = build_csr(10, np.array([u for u, _ in edges]), np.array([v for _, v in edges]))
        D = distance_matrix(csr, apply_cinf=False)
        for k in (1, 2, 3):
            assert exact_k_center(D, k).objective == k_center_via_best_response(csr, k).objective


class TestTheorem23:
    """Nash equilibria exist for every budget vector; PoS = O(1)."""

    def test_equilibria_exist_various_budget_shapes(self):
        shapes = [
            [0, 0, 0, 0, 0, 5],       # one rich player
            [1, 1, 1, 1, 1, 1, 1],    # all-unit
            [0, 0, 0, 2, 2, 2],       # case 2 flavour
            [0, 0, 0, 0, 1],          # disconnected (case 3)
            [3, 3, 3, 3],             # dense
        ]
        for budgets in shapes:
            ec = construct_equilibrium(budgets)
            for version in ("sum", "max"):
                cert = certify_equilibrium(ec.graph, version, method="exact")
                assert cert.is_equilibrium, (budgets, version)

    def test_price_of_stability_constant(self):
        for budgets in ([1] * 9, [0, 0, 0, 2, 2, 2, 2], [2] * 7):
            ec = construct_equilibrium(budgets)
            assert diameter(ec.graph) <= 4


class TestLemma31:
    """sigma >= n - 1 => equilibria are connected."""

    def test_dynamics_equilibria_connected(self):
        for seed in range(5):
            n = 10
            budgets = random_budgets_with_sum(n, n - 1 + seed, seed=seed)
            game = BoundedBudgetGame(budgets)
            res = best_response_dynamics(
                game, game.random_realization(seed=seed), "sum", max_rounds=200
            )
            if res.converged:
                assert is_connected(res.graph), seed


class TestTheorem32:
    """MAX tree equilibria with diameter Θ(n)."""

    def test_spider_linear_diameter_certified(self):
        for k in (2, 4, 6):
            inst = spider_equilibrium(k)
            assert diameter(inst.graph) == 2 * k
            cert = certify_equilibrium(inst.graph, "max", method="exact")
            assert cert.is_equilibrium


class TestTheorem33:
    """SUM tree equilibria have diameter O(log n)."""

    def test_equilibrium_trees_obey_log_bound(self):
        for seed in range(8):
            n = 18
            g, budgets = random_tree_realization(n, seed=seed)
            game = BoundedBudgetGame(budgets)
            res = best_response_dynamics(game, g, "sum", max_rounds=300)
            if not res.converged:
                continue
            assert is_tree(res.graph)
            assert diameter(res.graph) <= theorem_3_3_bound(n)
            assert verify_sum_equilibrium_inequality(res.graph).holds


class TestTheorem34:
    """Perfect binary trees are SUM equilibria: PoA >= Ω(log n)."""

    def test_binary_tree_certified(self):
        inst = binary_tree_equilibrium(4)
        cert = certify_equilibrium(inst.graph, "sum", method="exact")
        assert cert.is_equilibrium
        assert diameter(inst.graph) == 8


class TestSection4:
    """All-unit budgets: Θ(1) diameter, unicyclic structure."""

    @pytest.mark.parametrize("version", ["sum", "max"])
    def test_structure_theorems_on_equilibria(self, version):
        for seed in range(5):
            game = BoundedBudgetGame(unit_budgets(15))
            res = best_response_dynamics(
                game, game.random_realization(seed=seed), version, max_rounds=200
            )
            assert res.converged
            rep = check_unit_structure(res.graph)
            assert rep.satisfies(version), (version, seed, rep)


class TestTheorem53:
    """All-positive budgets can have diameter Ω(√log n) in MAX."""

    def test_overlap_graph_certified_with_positive_budgets(self):
        inst = overlap_graph_equilibrium(4, 2)
        assert (inst.budgets > 0).all()
        assert diameter(inst.graph) == 2
        cert = certify_equilibrium(inst.graph, "max", method="exact", max_candidates=None)
        assert cert.is_equilibrium

    def test_braess_contrast_with_unit_budgets(self):
        # At the same n, unit budgets give a smaller or equal diameter
        # bound class: unit < 8 always; overlap grows as sqrt(log n).
        inst = overlap_graph_equilibrium(6, 3)
        assert diameter(inst.graph) == 3
        game = BoundedBudgetGame(unit_budgets(20))
        res = best_response_dynamics(game, game.random_realization(seed=0), "max")
        assert diameter(res.graph) < 8


class TestTheorem69:
    """SUM equilibria have sub-polynomial diameter."""

    def test_diameters_below_envelope(self):
        for seed in range(4):
            n = 24
            budgets = random_budgets_with_sum(n, n + 4, seed=seed)
            game = BoundedBudgetGame(budgets)
            from repro.experiments import stabilize

            out = stabilize(game, game.random_realization(seed=seed, connected=True), "sum", seed=seed)
            if out.converged:
                # Generous concrete envelope at this size.
                assert diameter(out.graph) <= 4 * 2 ** np.sqrt(np.log2(n))


class TestTheorem72:
    """Min budget k => k-connected or diameter <= 3 (SUM)."""

    @pytest.mark.parametrize("k", [2, 3])
    def test_connectivity_dichotomy(self, k):
        for seed in range(3):
            n = 9
            game = BoundedBudgetGame(uniform_budgets(n, k))
            res = best_response_dynamics(
                game,
                game.random_realization(seed=seed, connected=True),
                "sum",
                max_rounds=150,
            )
            if not res.converged:
                continue
            rep = check_connectivity_theorem(res.graph, k)
            assert rep.holds, (k, seed, rep.summary())


class TestNPHardnessScaling:
    """The exact best response really does blow up exponentially."""

    def test_candidate_counts_grow_combinatorially(self):
        import math

        game_small = BoundedBudgetGame([2] + [1] * 7)
        g = game_small.random_realization(seed=0, connected=True)
        r = exact_best_response(g, 0, "sum")
        assert r.evaluated == math.comb(7, 2)
