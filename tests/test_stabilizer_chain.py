"""Stabilizer-chain canonicalization against whole-group references.

Pits :class:`~repro.core.isomorphism.BudgetStabilizerChain` — the
batched minimal-image engine behind the census's exact survivor
recheck — against two independent oracles: a brute-force enumeration
of the budget-preserving group (tiny ``n``) and the retained
whole-group gather reference inside :class:`_OrbitKeys`. Also pins the
chain-aligned cell order contract, the single-source symmetry-cap
message at both call sites, and the v1 -> v2 orbit-key checkpoint
migration (including its loud-failure paths).
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.enumeration import (
    _MAX_SYMMETRY_N,
    _budget_symmetry_group,
    _OrbitKeys,
    census_scan,
)
from repro.core.game import BoundedBudgetGame
from repro.core.isomorphism import BudgetStabilizerChain, chain_cell_positions
from repro.errors import CheckpointError, GameError


def _label_group(labels: "list[int]") -> "list[np.ndarray]":
    """Brute-force: every permutation preserving the label vector."""
    n = len(labels)
    out = []
    for perm in itertools.permutations(range(n)):
        if all(labels[perm[i]] == labels[i] for i in range(n)):
            out.append(np.asarray(perm, dtype=np.int64))
    return out


def _relabel(adj: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """``A'[a, b] = A[perm[a], perm[b]]`` — the chain's convention."""
    return adj[np.ix_(perm, perm)]


@st.composite
def _labels_and_adjs(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    labels = draw(
        st.lists(
            st.integers(min_value=0, max_value=2), min_size=n, max_size=n
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    adjs = rng.random((6, n, n)) < 0.4
    for k in range(adjs.shape[0]):
        np.fill_diagonal(adjs[k], False)
    return labels, adjs


@settings(max_examples=60, deadline=None)
@given(_labels_and_adjs())
def test_minimal_images_match_brute_force(case):
    labels, adjs = case
    chain = BudgetStabilizerChain(labels)
    perms = _label_group(labels)
    assert chain.order == len(perms)
    min_hi, min_lo, stab = chain.minimal_images(adjs)
    for k in range(adjs.shape[0]):
        keys = {chain.key_of(_relabel(adjs[k], p)) for p in perms}
        distinct = {
            tuple(map(tuple, _relabel(adjs[k], p))) for p in perms
        }
        assert min(keys) == (int(min_hi[k]), int(min_lo[k]))
        assert chain.order // int(stab[k]) == len(distinct)


@settings(max_examples=40, deadline=None)
@given(
    budgets=st.lists(
        st.integers(min_value=0, max_value=2), min_size=3, max_size=5
    ),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_exact_stage_matches_whole_group_reference(budgets, seed):
    """Chain recheck == retained pre-chain whole-group gather."""
    n = len(budgets)
    perms = _budget_symmetry_group(budgets)
    orbit = _OrbitKeys(n, perms)
    if not orbit._exact:
        return  # group == probe set: the walk never reaches the exact stage
    chain = BudgetStabilizerChain(budgets)
    rng = np.random.default_rng(seed)
    for _ in range(5):
        adj = rng.random((n, n)) < 0.4
        np.fill_diagonal(adj, False)
        hi, lo = chain.key_of(adj)
        ref = orbit._reference_orbit_size(hi, lo)
        got = int(
            orbit._exact_orbit_sizes(
                np.asarray([hi], dtype=np.uint64),
                np.asarray([lo], dtype=np.uint64),
            )[0]
        )
        assert got == (0 if ref is None else ref)


@pytest.mark.parametrize("n", [2, 3, 5, 8, 11])
def test_chain_cell_positions_contract(n):
    pos = chain_cell_positions(n)
    flat = np.sort(pos.ravel())
    assert np.array_equal(flat, np.arange(n * n))  # a bijection
    diag = np.sort(np.diagonal(pos))
    assert np.array_equal(diag, np.arange(n))  # diagonals least significant
    # Off-diagonal significance descends in (min(a,b), a*n+b) order, so
    # each chain level's revealed cells form one contiguous run.
    cells = [(a, b) for a in range(n) for b in range(n) if a != b]
    cells.sort(key=lambda ab: (min(ab), ab[0] * n + ab[1]), reverse=True)
    got = [int(pos[a, b]) for a, b in cells]
    assert got == list(range(n * n - 1, n - 1, -1))


def test_chain_rejects_oversized_n():
    with pytest.raises(GameError, match="two 64-bit words"):
        BudgetStabilizerChain([0] * 12)


def test_symmetry_cap_message_identical_at_both_call_sites():
    """The 128-bit cap raises the same message from both entry points."""
    n = _MAX_SYMMETRY_N + 1
    game = BoundedBudgetGame([1] * n)
    with pytest.raises(GameError, match="128-bit") as via_scan:
        census_scan(game, "sum", symmetry=True, max_profiles=10**15)
    with pytest.raises(GameError, match="128-bit") as via_orbit:
        _OrbitKeys(n, np.arange(n, dtype=np.int64)[None, :])
    assert str(via_scan.value) == str(via_orbit.value)
    assert f"capped at n = {_MAX_SYMMETRY_N}" in str(via_scan.value)


# ----------------------------------------------------------------------
# Orbit-key checkpoint format migration (v1 -> v2)
# ----------------------------------------------------------------------
def _toggled_orbit(budgets: "list[int]") -> _OrbitKeys:
    game = BoundedBudgetGame(budgets)
    orbit = _OrbitKeys(game.n, _budget_symmetry_group(budgets))
    rng = np.random.default_rng(7)
    for a in range(game.n):
        for b in range(game.n):
            if a != b and rng.random() < 0.4:
                orbit.toggle(a, b, True)
    return orbit


def _v1_vector(orbit: _OrbitKeys) -> "tuple[int, ...]":
    """The row-major 64-bit probe vector the pre-128-bit code wrote."""
    n = orbit._n
    state = orbit.export_state()
    out = []
    for hi, lo in zip(state[0::2], state[1::2]):
        adj = orbit._adjs_from_keys(
            np.asarray([hi], dtype=np.uint64),
            np.asarray([lo], dtype=np.uint64),
        )[0]
        out.append(
            sum(1 << (int(a) * n + int(b)) for a, b in zip(*np.nonzero(adj)))
        )
    return tuple(out)


def test_v1_state_migrates_to_identical_probe_keys():
    orbit = _toggled_orbit([1, 1, 1, 1])
    fresh = _OrbitKeys(4, _budget_symmetry_group([1, 1, 1, 1]))
    fresh.restore_state(_v1_vector(orbit), key_format=1)
    assert np.array_equal(fresh._vals_hi, orbit._vals_hi)
    assert np.array_equal(fresh._vals_lo, orbit._vals_lo)


def test_v2_state_round_trips():
    orbit = _toggled_orbit([2, 2, 1, 1, 0])
    fresh = _OrbitKeys(5, _budget_symmetry_group([2, 2, 1, 1, 0]))
    fresh.restore_state(orbit.export_state(), key_format=2)
    assert np.array_equal(fresh._vals_hi, orbit._vals_hi)
    assert np.array_equal(fresh._vals_lo, orbit._vals_lo)


def test_v1_state_fails_loudly_when_keys_cannot_fit():
    budgets = [1] * 8 + [0]  # n = 9: n^2 = 81 > 64
    orbit = _OrbitKeys(9, _budget_symmetry_group(budgets))
    probes = orbit._vals_hi.shape[0]
    with pytest.raises(CheckpointError, match="v1 \\(64-bit\\) orbit keys"):
        orbit.restore_state((0,) * probes, key_format=1)


def test_restore_state_rejects_unknown_format_and_bad_lengths():
    orbit = _OrbitKeys(4, _budget_symmetry_group([1, 1, 1, 1]))
    probes = orbit._vals_hi.shape[0]
    with pytest.raises(CheckpointError, match="unknown orbit key format"):
        orbit.restore_state((0,) * (2 * probes), key_format=3)
    with pytest.raises(CheckpointError, match="words"):
        orbit.restore_state((0,) * (2 * probes + 1), key_format=2)
    with pytest.raises(CheckpointError, match="probe keys"):
        orbit.restore_state((0,) * (probes + 1), key_format=1)
