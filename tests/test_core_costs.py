"""Unit tests for the SUM / MAX cost functions, vs the naive oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Version, all_costs, cost_profile, social_cost, vertex_cost
from repro.errors import GameError, VertexError
from repro.graphs import OwnedDigraph, cinf, cycle_realization, path_realization

from conftest import naive_vertex_cost, random_owned_digraph


def test_version_coercion():
    assert Version.coerce("sum") is Version.SUM
    assert Version.coerce("MAX") is Version.MAX
    assert Version.coerce(Version.SUM) is Version.SUM
    with pytest.raises(GameError):
        Version.coerce("average")


def test_path_costs():
    g = path_realization(5)
    # End vertex: distances 1+2+3+4; middle: 2+1+1+2.
    assert vertex_cost(g, 0, "sum") == 10
    assert vertex_cost(g, 2, "sum") == 6
    assert vertex_cost(g, 0, "max") == 4
    assert vertex_cost(g, 2, "max") == 2


def test_disconnected_costs(two_components):
    n = 5
    c = cinf(n)
    # vertex 0: dist 1 to vertex 1, Cinf to the rest; kappa = 3.
    assert vertex_cost(two_components, 0, "sum") == 1 + 3 * c
    assert vertex_cost(two_components, 0, "max") == c + 2 * c
    # isolated vertex 4.
    assert vertex_cost(two_components, 4, "sum") == 4 * c
    assert vertex_cost(two_components, 4, "max") == c + 2 * c


def test_single_vertex_zero_cost():
    g = OwnedDigraph(1)
    assert vertex_cost(g, 0, "sum") == 0
    assert vertex_cost(g, 0, "max") == 0
    assert all_costs(g, "max").tolist() == [0]


def test_vertex_cost_invalid_vertex(path5):
    with pytest.raises(VertexError):
        vertex_cost(path5, 9, "sum")


def test_all_costs_matches_vertex_cost(rng):
    for _ in range(8):
        n = int(rng.integers(2, 12))
        g = random_owned_digraph(rng, n, p=0.3)
        for version in ("sum", "max"):
            vec = all_costs(g, version)
            for u in range(n):
                assert vec[u] == vertex_cost(g, u, version)


def test_costs_match_naive_oracle(rng):
    for _ in range(10):
        n = int(rng.integers(2, 12))
        g = random_owned_digraph(rng, n, p=0.25)
        for u in range(n):
            assert vertex_cost(g, u, "sum") == naive_vertex_cost(g, u, "sum")
            assert vertex_cost(g, u, "max") == naive_vertex_cost(g, u, "max")


def test_social_cost_is_diameter():
    g = cycle_realization(6)
    assert social_cost(g) == 3
    assert social_cost(path_realization(4)) == 3


def test_cost_profile_dict(path5):
    prof = cost_profile(path5, "max")
    assert prof == {0: 4, 1: 3, 2: 2, 3: 3, 4: 4}


def test_brace_cost(brace_pair):
    # Two vertices joined by a brace: each at distance 1 from the other.
    assert vertex_cost(brace_pair, 0, "sum") == 1
    assert vertex_cost(brace_pair, 0, "max") == 1
