"""Unit tests for components, vertex connectivity and Menger witnesses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs import (
    OwnedDigraph,
    articulation_points,
    connected_components,
    cycle_realization,
    is_connected,
    is_k_connected,
    local_vertex_connectivity,
    menger_paths,
    num_components,
    path_realization,
    star_realization,
    vertex_connectivity,
)

from conftest import random_owned_digraph, to_networkx_undirected


def test_components_labels_canonical(two_components):
    labels, k = connected_components(two_components)
    assert k == 3
    assert labels.tolist() == [0, 0, 1, 1, 2]


def test_connected_predicates(path5, two_components):
    assert is_connected(path5)
    assert not is_connected(two_components)
    assert num_components(path5) == 1


def test_single_vertex_connectivity():
    g = OwnedDigraph(1)
    assert is_connected(g)
    assert vertex_connectivity(g) == 0
    assert not is_k_connected(g, 1)


def test_path_connectivity():
    g = path_realization(6)
    assert vertex_connectivity(g) == 1
    assert is_k_connected(g, 1)
    assert not is_k_connected(g, 2)


def test_cycle_connectivity():
    g = cycle_realization(8)
    assert vertex_connectivity(g) == 2
    assert is_k_connected(g, 2)
    assert not is_k_connected(g, 3)


def test_complete_graph_connectivity():
    g = OwnedDigraph(5)
    for u in range(5):
        for v in range(u + 1, 5):
            g.add_arc(u, v)
    assert vertex_connectivity(g) == 4
    assert is_k_connected(g, 4)
    assert not is_k_connected(g, 5)  # needs more than k vertices


def test_star_connectivity():
    g = star_realization(7)
    assert vertex_connectivity(g) == 1
    assert articulation_points(g).tolist() == [0]


def test_disconnected_connectivity(two_components):
    assert vertex_connectivity(two_components) == 0


def test_local_connectivity_path():
    g = path_realization(5)
    assert local_vertex_connectivity(g, 0, 4) == 1


def test_local_connectivity_requires_nonadjacent():
    g = path_realization(3)
    with pytest.raises(GraphError):
        local_vertex_connectivity(g, 0, 1)
    with pytest.raises(GraphError):
        local_vertex_connectivity(g, 1, 1)


def test_connectivity_matches_networkx(rng):
    import networkx as nx

    checked = 0
    for _ in range(20):
        n = int(rng.integers(4, 12))
        g = random_owned_digraph(rng, n, p=float(rng.uniform(0.15, 0.5)))
        ours = vertex_connectivity(g)
        theirs = nx.node_connectivity(to_networkx_undirected(g))
        assert ours == theirs, (g.underlying_edges(), ours, theirs)
        checked += 1
    assert checked == 20


def test_articulation_matches_networkx(rng):
    import networkx as nx

    for _ in range(15):
        n = int(rng.integers(3, 14))
        g = random_owned_digraph(rng, n, p=0.25)
        ours = set(articulation_points(g).tolist())
        theirs = set(nx.articulation_points(to_networkx_undirected(g)))
        assert ours == theirs


def test_menger_paths_cycle():
    g = cycle_realization(6)
    paths = menger_paths(g, 0, 3)
    assert len(paths) == 2
    for p in paths:
        assert p[0] == 0 and p[-1] == 3
    # Internal vertices must be disjoint.
    internals = [set(p[1:-1]) for p in paths]
    assert internals[0].isdisjoint(internals[1])


def test_menger_paths_count_equals_local_connectivity(rng):
    for _ in range(10):
        n = int(rng.integers(5, 11))
        g = random_owned_digraph(rng, n, p=0.35)
        csr = g.undirected_csr()
        # Find a non-adjacent pair.
        pair = None
        for u in range(n):
            for v in range(u + 1, n):
                if not csr.has_edge(u, v):
                    pair = (u, v)
                    break
            if pair:
                break
        if pair is None:
            continue
        k = local_vertex_connectivity(g, *pair)
        paths = menger_paths(g, *pair)
        assert len(paths) == k
        seen: set[int] = set()
        for p in paths:
            inner = set(p[1:-1])
            assert seen.isdisjoint(inner)
            seen |= inner


def test_menger_requires_nonadjacent(path5):
    with pytest.raises(GraphError):
        menger_paths(path5, 0, 1)


def test_menger_paths_are_real_paths():
    g = cycle_realization(7)
    csr = g.undirected_csr()
    for p in menger_paths(g, 0, 3):
        for a, b in zip(p, p[1:]):
            assert csr.has_edge(a, b)


def test_connectivity_limit_early_exit():
    g = cycle_realization(10)
    assert vertex_connectivity(g, limit=1) >= 1
    assert is_k_connected(g, 2)
