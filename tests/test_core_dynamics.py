"""Unit tests for best-response dynamics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BoundedBudgetGame,
    Version,
    best_response_dynamics,
    is_equilibrium,
)
from repro.errors import DynamicsError, StrategyError
from repro.graphs import diameter, path_realization, unit_budgets


def test_converged_fixed_point_is_equilibrium():
    game = BoundedBudgetGame(unit_budgets(8))
    start = game.random_realization(seed=0)
    res = best_response_dynamics(game, start, "sum", max_rounds=100)
    assert res.converged
    assert not res.cycled
    assert is_equilibrium(res.graph, "sum")


def test_initial_graph_not_mutated():
    game = BoundedBudgetGame(unit_budgets(6))
    start = game.random_realization(seed=1)
    key = start.profile_key()
    best_response_dynamics(game, start, "max", max_rounds=50)
    assert start.profile_key() == key


def test_moves_are_strict_improvements():
    game = BoundedBudgetGame([1, 1, 1, 1, 1, 1])
    start = game.random_realization(seed=2)
    res = best_response_dynamics(game, start, "sum", max_rounds=50)
    for move in res.moves:
        assert move.gain > 0
        assert move.new_cost < move.old_cost


def test_round_counting_and_social_costs():
    game = BoundedBudgetGame(unit_budgets(7))
    start = game.random_realization(seed=3)
    res = best_response_dynamics(game, start, "sum", max_rounds=60)
    assert res.rounds == len(res.social_costs)
    assert res.social_costs[-1] == diameter(res.graph)


def test_equilibrium_start_converges_immediately():
    from repro.constructions import binary_tree_equilibrium

    inst = binary_tree_equilibrium(2)
    game = BoundedBudgetGame(inst.graph.out_degrees())
    res = best_response_dynamics(game, inst.graph, "sum", max_rounds=10)
    assert res.converged
    assert res.rounds == 1
    assert res.num_moves == 0
    assert res.graph == inst.graph


def test_max_rounds_cap():
    game = BoundedBudgetGame(unit_budgets(12))
    start = game.random_realization(seed=4)
    res = best_response_dynamics(game, start, "sum", max_rounds=1, detect_cycles=False)
    assert res.rounds == 1


def test_random_schedule_deterministic_seed():
    game = BoundedBudgetGame(unit_budgets(9))
    start = game.random_realization(seed=5)
    r1 = best_response_dynamics(game, start, "sum", schedule="random", seed=11)
    r2 = best_response_dynamics(game, start, "sum", schedule="random", seed=11)
    assert r1.graph == r2.graph
    assert r1.rounds == r2.rounds


def test_invalid_schedule_and_rounds():
    game = BoundedBudgetGame([1, 1])
    start = game.random_realization(seed=0)
    with pytest.raises(DynamicsError):
        best_response_dynamics(game, start, "sum", schedule="sorted")
    with pytest.raises(DynamicsError):
        best_response_dynamics(game, start, "sum", max_rounds=0)


def test_realization_validated():
    game = BoundedBudgetGame([1, 1, 1])
    wrong = path_realization(3)  # out-degrees (1, 1, 0) != (1, 1, 1)
    with pytest.raises(StrategyError):
        best_response_dynamics(game, wrong, "sum")


def test_swap_dynamics_converges():
    game = BoundedBudgetGame(unit_budgets(10))
    start = game.random_realization(seed=6)
    res = best_response_dynamics(game, start, "max", method="swap", max_rounds=100)
    assert res.converged
    # For unit budgets a swap move set equals the exact move set, so the
    # fixed point is a true equilibrium.
    assert is_equilibrium(res.graph, "max")


def test_greedy_dynamics_stabilises():
    game = BoundedBudgetGame([2, 2, 1, 1, 0, 1])
    start = game.random_realization(seed=7, connected=True)
    res = best_response_dynamics(game, start, "sum", method="greedy", max_rounds=100)
    assert res.converged


def test_record_moves_off():
    game = BoundedBudgetGame(unit_budgets(8))
    start = game.random_realization(seed=8)
    res = best_response_dynamics(game, start, "sum", record_moves=False)
    assert res.moves == []
    assert res.converged


def test_connectivity_restored_by_dynamics():
    # Start disconnected with enough budget: equilibria are connected
    # (Lemma 3.1), so dynamics must reconnect.
    from repro.graphs import is_connected

    game = BoundedBudgetGame([1, 1, 1, 1, 1, 1])
    start = game.realization([{1}, {0}, {3}, {2}, {5}, {4}])
    assert not is_connected(start)
    res = best_response_dynamics(game, start, "sum", max_rounds=100)
    assert res.converged
    assert is_connected(res.graph)


def _trajectory(res):
    return (
        res.graph.profile_key(),
        res.converged,
        res.cycled,
        res.rounds,
        res.social_costs,
        [
            (m.round_index, m.player, m.old_strategy, m.new_strategy,
             m.old_cost, m.new_cost)
            for m in res.moves
        ],
    )


@pytest.mark.parametrize("version", ["sum", "max"])
@pytest.mark.parametrize("schedule", ["round_robin", "random"])
def test_trajectory_bit_identical_across_engine_modes(version, schedule):
    # The per-step verdict routes through deviations.deviation_improves
    # on cached runs; every engine mode (no engine, eager cache, lazy
    # row-on-demand cache) must walk the exact same trajectory.
    game = BoundedBudgetGame([2, 1, 1, 1, 1, 0])
    for seed in (0, 5):
        start = game.random_realization(seed=seed)
        base = best_response_dynamics(
            game, start, version, schedule=schedule, seed=11,
            max_rounds=60, use_engine=False,
        )
        for kwargs in ({}, {"rows": "lazy"}):
            res = best_response_dynamics(
                game, start, version, schedule=schedule, seed=11,
                max_rounds=60, **kwargs,
            )
            assert _trajectory(res) == _trajectory(base)


def test_lazy_rows_cold_run_avoids_full_builds():
    # A cold instance run with rows="lazy" converges without a single
    # full all-pairs rebuild: lemma screens and best-response queries
    # materialise rows on demand.
    game = BoundedBudgetGame(unit_budgets(8))
    start = game.random_realization(seed=4)
    res = best_response_dynamics(game, start, "sum", rows="lazy", max_rounds=100)
    assert res.converged
    assert res.engine_stats is not None
    assert res.engine_stats["rebuilds"] == 0
    assert res.engine_stats["lazy_rows"] > 0
