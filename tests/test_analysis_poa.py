"""Tests for OPT-diameter bounds and PoA/PoS intervals."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.analysis import (
    exact_optimal_diameter,
    optimal_diameter_bounds,
    poa_interval,
    pos_interval,
)
from repro.errors import GameError
from repro.graphs import cinf


def test_disconnected_regime_exact():
    b = [0, 0, 0, 1]
    bounds = optimal_diameter_bounds(b)
    assert bounds.lower == bounds.upper == cinf(4)
    assert bounds.is_exact


def test_single_player():
    bounds = optimal_diameter_bounds([0])
    assert bounds.lower == bounds.upper == 0


def test_complete_graph_regime():
    # sigma >= C(n, 2): diameter 1 achievable.
    b = [2, 2, 2]  # sigma = 6 >= 3
    bounds = optimal_diameter_bounds(b)
    assert bounds.lower == 1


def test_generic_connected_regime():
    bounds = optimal_diameter_bounds([1, 1, 1, 1, 1, 1])
    assert bounds.lower == 2
    assert bounds.upper <= 4


def test_bounds_contain_exact_optimum(rng):
    for _ in range(8):
        n = int(rng.integers(2, 6))
        b = rng.integers(0, n, size=n)
        bounds = optimal_diameter_bounds(b)
        exact = exact_optimal_diameter(b)
        assert bounds.lower <= exact <= bounds.upper, (b.tolist(), exact, bounds)


def test_exact_optimal_guard():
    with pytest.raises(GameError):
        exact_optimal_diameter([5] * 12, max_profiles=10)


def test_invalid_bounds_rejected():
    from repro.analysis.poa import DiameterBounds

    with pytest.raises(GameError):
        DiameterBounds(3, 2)


def test_poa_interval_fractions():
    lo, hi = poa_interval(8, [1] * 8)
    bounds = optimal_diameter_bounds([1] * 8)
    assert lo == Fraction(8, bounds.upper)
    assert hi == Fraction(8, bounds.lower)
    assert lo <= hi


def test_pos_interval():
    lo, hi = pos_interval(2, [1] * 6)
    assert lo <= Fraction(1) <= hi or lo <= hi  # sanity: a valid interval
    assert hi == Fraction(2, 2)
