"""Tests for the Lemma 6.5 and Theorem 6.1 checkers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.weighted import (
    WeightedRealization,
    degree_two_path_edges,
    lemma_6_5_bound,
    theorem_6_1_radius,
    tree_ball_radius,
)
from repro.constructions import binary_tree_equilibrium
from repro.core import BoundedBudgetGame, best_response_dynamics
from repro.graphs import OwnedDigraph, cycle_realization, path_realization, unit_budgets


def test_degree_two_count_on_path():
    g = path_realization(6)
    wr = WeightedRealization.unit(g)
    # Interior vertices 1..4 have degree 2; edges with both endpoints
    # interior: (1,2), (2,3), (3,4).
    assert degree_two_path_edges(wr, [0, 1, 2, 3, 4, 5]) == 3


def test_lemma_6_5_bound_value():
    g = path_realization(7)
    wr = WeightedRealization.unit(g)
    path = list(range(7))
    # w(P) = 7 -> bound = 2 * (floor(log2 8) + 1) = 8.
    assert lemma_6_5_bound(wr, path) == 8


def test_lemma_6_5_on_sum_equilibria():
    # Equilibrium trees from dynamics: the degree-2 edge count along the
    # diameter path must respect the Lemma 6.5 bound.
    from repro.analysis import longest_path_decomposition
    from repro.graphs import is_tree, random_tree_realization

    for seed in range(4):
        g, budgets = random_tree_realization(16, seed=seed)
        game = BoundedBudgetGame(budgets)
        res = best_response_dynamics(game, g, "sum", max_rounds=200)
        if not res.converged or not is_tree(res.graph):
            continue
        wr = WeightedRealization.unit(res.graph)
        path = list(longest_path_decomposition(res.graph).path)
        assert degree_two_path_edges(wr, path) <= lemma_6_5_bound(wr, path)


def test_tree_ball_radius_on_tree():
    # A path is a tree everywhere: the ball radius equals the eccentricity.
    g = path_realization(7)
    assert tree_ball_radius(g, 3) == 3
    assert tree_ball_radius(g, 0) == 6
    assert theorem_6_1_radius(g) == 6


def test_tree_ball_radius_cycle():
    # On C_8, balls are trees until the antipode closes the cycle.
    g = cycle_realization(8)
    r = tree_ball_radius(g, 0)
    assert r == 3  # B_4 contains the whole cycle
    g5 = cycle_realization(5)
    assert tree_ball_radius(g5, 0) == 1  # B_2 already closes C_5


def test_tree_ball_brace_counts_as_cycle():
    g = OwnedDigraph(3)
    g.add_arc(0, 1)
    g.add_arc(1, 0)
    g.add_arc(1, 2)
    # B_1(0) contains the brace {0,1}: a multigraph 2-cycle, not a tree.
    assert tree_ball_radius(g, 0) == 0


def test_theorem_6_1_on_sum_equilibria():
    # SUM equilibria: tree-ball radii are logarithmic. Use the certified
    # binary tree (whole graph is a tree, so radius = diameter-ish but n
    # is exponential in it) and unit-budget equilibria (tiny radii).
    inst = binary_tree_equilibrium(4)
    r = theorem_6_1_radius(inst.graph)
    assert r == 8  # = diameter; and 8 <= c log2(31) for c ~ 2
    assert r <= 2 * (np.log2(inst.n + 1))
    game = BoundedBudgetGame(unit_budgets(12))
    res = best_response_dynamics(game, game.random_realization(seed=0), "sum")
    assert res.converged
    assert theorem_6_1_radius(res.graph) <= 4
