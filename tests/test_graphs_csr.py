"""Unit tests for the CSR adjacency builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.csr import CSRAdjacency, build_csr, csr_without_vertex


def test_empty_graph():
    csr = build_csr(3, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
    assert csr.n == 3
    assert csr.num_edges == 0
    for v in range(3):
        assert csr.neighbors(v).size == 0
        assert csr.degree(v) == 0


def test_single_edge_symmetrised():
    csr = build_csr(2, np.array([0]), np.array([1]))
    assert csr.neighbors(0).tolist() == [1]
    assert csr.neighbors(1).tolist() == [0]
    assert csr.num_edges == 1


def test_brace_collapses_to_single_edge():
    # Anti-parallel arcs 0->1 and 1->0 are one undirected edge.
    csr = build_csr(2, np.array([0, 1]), np.array([1, 0]))
    assert csr.num_edges == 1
    assert csr.neighbors(0).tolist() == [1]


def test_neighbors_sorted_and_deduped():
    heads = np.array([2, 2, 0, 1, 0])
    tails = np.array([0, 1, 2, 2, 1])
    csr = build_csr(3, heads, tails)
    assert csr.neighbors(2).tolist() == [0, 1]
    assert csr.neighbors(0).tolist() == [1, 2]
    assert csr.degrees().tolist() == [2, 2, 2]


def test_has_edge():
    csr = build_csr(4, np.array([0, 1]), np.array([1, 2]))
    assert csr.has_edge(0, 1)
    assert csr.has_edge(2, 1)
    assert not csr.has_edge(0, 2)
    assert not csr.has_edge(3, 0)


def test_self_loop_rejected():
    with pytest.raises(GraphError):
        build_csr(3, np.array([1]), np.array([1]))


def test_out_of_range_rejected():
    with pytest.raises(GraphError):
        build_csr(3, np.array([0]), np.array([3]))
    with pytest.raises(GraphError):
        build_csr(3, np.array([-1]), np.array([0]))


def test_shape_mismatch_rejected():
    with pytest.raises(GraphError):
        build_csr(3, np.array([0, 1]), np.array([1]))


def test_without_vertex_isolates_but_keeps_indexing():
    # Triangle 0-1-2; removing 1 leaves edge 0-2 and empty row 1.
    csr = build_csr(3, np.array([0, 1, 2]), np.array([1, 2, 0]))
    reduced = csr_without_vertex(csr, 1)
    assert reduced.n == 3
    assert reduced.neighbors(1).size == 0
    assert reduced.neighbors(0).tolist() == [2]
    assert reduced.neighbors(2).tolist() == [0]


def test_without_vertex_invalid():
    csr = build_csr(2, np.array([0]), np.array([1]))
    with pytest.raises(GraphError):
        csr_without_vertex(csr, 5)


def test_without_vertex_preserves_original():
    csr = build_csr(3, np.array([0, 1]), np.array([1, 2]))
    csr_without_vertex(csr, 1)
    assert csr.neighbors(1).tolist() == [0, 2]
