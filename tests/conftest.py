"""Shared fixtures and oracle helpers for the test suite.

``networkx`` and ``scipy`` serve as independent oracles for the
from-scratch graph substrate; every random test is seeded for
reproducibility.

The **engine fixture matrix** lives here too: ``engine_harness`` is
parametrized over every distance-engine implementation that must honor
the same contract on unit-weight substrates — currently
:class:`~repro.graphs.engine.DistanceEngine` and
:class:`~repro.graphs.weighted_engine.WeightedDistanceEngine` — so the
conformance suite (``test_engine_conformance.py``) runs each case once
per engine instead of copy-pasting per-engine test files.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    CSRAdjacency,
    DistanceEngine,
    OwnedDigraph,
    WeightedDistanceEngine,
    csr_without_vertex,
    weighted_csr_from_csr,
    weighted_csr_without_vertex,
)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for a single test."""
    return np.random.default_rng(12345)


@pytest.fixture
def path5() -> OwnedDigraph:
    """Path 0-1-2-3-4 with forward arc ownership."""
    g = OwnedDigraph(5)
    for i in range(4):
        g.add_arc(i, i + 1)
    return g


@pytest.fixture
def brace_pair() -> OwnedDigraph:
    """Two vertices joined by a brace (anti-parallel arcs)."""
    g = OwnedDigraph(2)
    g.add_arc(0, 1)
    g.add_arc(1, 0)
    return g


@pytest.fixture
def two_components() -> OwnedDigraph:
    """Disconnected graph: edge 0-1 and edge 2-3, vertex 4 isolated."""
    g = OwnedDigraph(5)
    g.add_arc(0, 1)
    g.add_arc(2, 3)
    return g


def random_owned_digraph(
    rng: np.random.Generator, n: int, p: float = 0.3
) -> OwnedDigraph:
    """Erdős–Rényi style random realization (each ordered pair w.p. p,
    no braces forced — both directions may appear)."""
    g = OwnedDigraph(n)
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < p:
                g.add_arc(u, v)
    return g


def random_tree_digraph(
    rng: np.random.Generator, n: int, extra_edges: int = 0
) -> OwnedDigraph:
    """Random tree-like realization: a uniform recursive tree plus up
    to ``extra_edges`` chords — the sparse regime where deletions dirty
    many rows but only small affected regions per row."""
    g = OwnedDigraph(n)
    for v in range(1, n):
        g.add_arc(int(rng.integers(v)), v)
    attempts = 0
    added = 0
    while added < extra_edges and attempts < 20 * (extra_edges + 1):
        attempts += 1
        a, b = int(rng.integers(n)), int(rng.integers(n))
        if a == b or g.has_arc(a, b) or g.has_arc(b, a):
            continue
        g.add_arc(a, b)
        added += 1
    return g


def to_networkx_undirected(g: OwnedDigraph):
    """Undirected networkx oracle view of a realization."""
    import networkx as nx

    G = nx.Graph()
    G.add_nodes_from(range(g.n))
    G.add_edges_from(g.underlying_edges())
    return G


def scipy_distance_oracle(g: OwnedDigraph) -> np.ndarray:
    """All-pairs distances of ``U(G)`` via scipy, UNREACHABLE for inf."""
    import scipy.sparse as sp
    from scipy.sparse.csgraph import shortest_path

    from repro.graphs import UNREACHABLE

    n = g.n
    mat = sp.lil_matrix((n, n), dtype=np.int64)
    for u, v in g.underlying_edges():
        mat[u, v] = 1
        mat[v, u] = 1
    dist = shortest_path(mat.tocsr(), method="D", unweighted=True, directed=False)
    out = np.full((n, n), UNREACHABLE, dtype=np.int64)
    finite = np.isfinite(dist)
    out[finite] = dist[finite].astype(np.int64)
    return out


def networkx_distance_oracle(g: OwnedDigraph) -> np.ndarray:
    """All-pairs distances of ``U(G)`` via networkx."""
    import networkx as nx

    from repro.graphs import UNREACHABLE

    G = to_networkx_undirected(g)
    out = np.full((g.n, g.n), UNREACHABLE, dtype=np.int64)
    for s, lengths in nx.all_pairs_shortest_path_length(G):
        for v, d in lengths.items():
            out[s, v] = d
    return out


def random_strategy_swap(rng: np.random.Generator, g: OwnedDigraph) -> None:
    """Replace one player's strategy with a random same-size one."""
    u = int(rng.integers(g.n))
    b = g.out_degree(u)
    others = [v for v in range(g.n) if v != u]
    k = min(b if b else int(rng.integers(0, g.n)), len(others))
    new = rng.choice(others, size=k, replace=False) if k else []
    g.set_strategy(u, [int(v) for v in np.atleast_1d(new)])


class EngineHarness:
    """Uniform facade over the engine implementations under conformance.

    Every engine consumes a substrate derived from a unit CSR adjacency
    and exposes the same read/mutation/staleness API; the harness hides
    the substrate type so one parametrized test body drives them all.
    Weighted engines run with all-unit weights here — the regime in
    which they must be bit-identical to the BFS engine.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind

    def __repr__(self) -> str:  # pytest id readability
        return f"EngineHarness({self.kind})"

    def substrate(self, csr: CSRAdjacency):
        """Engine-native substrate for a unit CSR adjacency."""
        if self.kind == "unit":
            return csr
        return weighted_csr_from_csr(csr)

    def build(self, csr: CSRAdjacency, **kwargs):
        """Engine over the substrate of ``csr``."""
        if self.kind == "unit":
            return DistanceEngine(csr, **kwargs)
        return WeightedDistanceEngine(weighted_csr_from_csr(csr), **kwargs)

    def build_isolated(self, csr: CSRAdjacency, u: int, **kwargs):
        """Engine over the substrate of ``csr`` with ``u`` isolated."""
        if self.kind == "unit":
            return DistanceEngine(csr_without_vertex(csr, u), **kwargs)
        return WeightedDistanceEngine(
            weighted_csr_without_vertex(weighted_csr_from_csr(csr), u), **kwargs
        )

    def from_snapshot(self, csr: CSRAdjacency, matrix: np.ndarray, **kwargs):
        """Engine adopting a precomputed matrix (copy-on-write)."""
        if self.kind == "unit":
            return DistanceEngine.from_snapshot(csr, matrix, **kwargs)
        return WeightedDistanceEngine.from_snapshot(
            weighted_csr_from_csr(csr), matrix, **kwargs
        )

    def update(self, engine, csr: CSRAdjacency) -> str:
        """Sync ``engine`` to the (unit) substrate of ``csr``."""
        return engine.update(self.substrate(csr))

    def remove_edge(self, engine, x: int, y: int) -> str:
        """Diff-free single-edge removal (the repair-hierarchy entry)."""
        return engine.remove_edge(x, y)

    def add_edge(self, engine, x: int, y: int) -> str:
        """Diff-free single-edge insertion."""
        return engine.add_edge(x, y)

    def current_substrate_csr(self, engine) -> CSRAdjacency:
        """Unit-CSR view of the engine's current substrate."""
        if self.kind == "unit":
            return engine.csr
        wcsr = engine.wcsr
        return CSRAdjacency(n=wcsr.n, indptr=wcsr.indptr, indices=wcsr.indices)

    def degree(self, engine, v: int) -> int:
        """Degree of ``v`` in the engine's current substrate."""
        sub = engine.csr if self.kind == "unit" else engine.wcsr
        return sub.degree(v)


#: Every engine kind the conformance suite must cover.
ENGINE_KINDS = ("unit", "weighted-unit")


@pytest.fixture(params=ENGINE_KINDS)
def engine_harness(request) -> EngineHarness:
    """One :class:`EngineHarness` per engine implementation."""
    return EngineHarness(request.param)


def naive_vertex_cost(g: OwnedDigraph, u: int, version: str) -> int:
    """Straight-from-the-definition cost via networkx shortest paths."""
    import networkx as nx

    G = to_networkx_undirected(g)
    n = g.n
    lengths = nx.single_source_shortest_path_length(G, u)
    dist = [lengths.get(v, n * n) for v in range(n)]
    if version == "sum":
        return sum(dist) - dist[u]
    kappa = nx.number_connected_components(G)
    others = [d for v, d in enumerate(dist) if v != u]
    local_diam = max(others) if others else 0
    return local_diam + (kappa - 1) * n * n
