"""Shared fixtures and oracle helpers for the test suite.

``networkx`` and ``scipy`` serve as independent oracles for the
from-scratch graph substrate; every random test is seeded for
reproducibility.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import OwnedDigraph


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for a single test."""
    return np.random.default_rng(12345)


@pytest.fixture
def path5() -> OwnedDigraph:
    """Path 0-1-2-3-4 with forward arc ownership."""
    g = OwnedDigraph(5)
    for i in range(4):
        g.add_arc(i, i + 1)
    return g


@pytest.fixture
def brace_pair() -> OwnedDigraph:
    """Two vertices joined by a brace (anti-parallel arcs)."""
    g = OwnedDigraph(2)
    g.add_arc(0, 1)
    g.add_arc(1, 0)
    return g


@pytest.fixture
def two_components() -> OwnedDigraph:
    """Disconnected graph: edge 0-1 and edge 2-3, vertex 4 isolated."""
    g = OwnedDigraph(5)
    g.add_arc(0, 1)
    g.add_arc(2, 3)
    return g


def random_owned_digraph(
    rng: np.random.Generator, n: int, p: float = 0.3
) -> OwnedDigraph:
    """Erdős–Rényi style random realization (each ordered pair w.p. p,
    no braces forced — both directions may appear)."""
    g = OwnedDigraph(n)
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < p:
                g.add_arc(u, v)
    return g


def to_networkx_undirected(g: OwnedDigraph):
    """Undirected networkx oracle view of a realization."""
    import networkx as nx

    G = nx.Graph()
    G.add_nodes_from(range(g.n))
    G.add_edges_from(g.underlying_edges())
    return G


def naive_vertex_cost(g: OwnedDigraph, u: int, version: str) -> int:
    """Straight-from-the-definition cost via networkx shortest paths."""
    import networkx as nx

    G = to_networkx_undirected(g)
    n = g.n
    lengths = nx.single_source_shortest_path_length(G, u)
    dist = [lengths.get(v, n * n) for v in range(n)]
    if version == "sum":
        return sum(dist) - dist[u]
    kappa = nx.number_connected_components(G)
    others = [d for v, d in enumerate(dist) if v != u]
    local_diam = max(others) if others else 0
    return local_diam + (kappa - 1) * n * n
