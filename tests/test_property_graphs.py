"""Property-based tests (hypothesis) for the graph substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    OwnedDigraph,
    UNREACHABLE,
    all_pairs_distances,
    cinf,
    connected_components,
    diameter,
    distance_matrix,
    eccentricities,
    is_connected,
)


@st.composite
def owned_digraphs(draw, max_n: int = 12):
    """Random OwnedDigraph via an arc-set strategy."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
    arcs = draw(st.lists(st.sampled_from(pairs), unique=True, max_size=min(len(pairs), 30))) if pairs else []
    return OwnedDigraph.from_arcs(n, arcs)


@given(owned_digraphs())
@settings(max_examples=60, deadline=None)
def test_distance_matrix_is_metric(g):
    d = all_pairs_distances(g.undirected_csr())
    n = g.n
    # Symmetry and zero diagonal.
    assert np.array_equal(d, d.T)
    assert (np.diag(d) == 0).all()
    # Triangle inequality on reachable triples.
    finite = d != UNREACHABLE
    for u in range(n):
        for v in range(n):
            if not finite[u, v]:
                continue
            for w in range(n):
                if finite[u, w] and finite[w, v]:
                    assert d[u, v] <= d[u, w] + d[w, v]


@given(owned_digraphs())
@settings(max_examples=60, deadline=None)
def test_distance_one_iff_adjacent(g):
    d = all_pairs_distances(g.undirected_csr())
    csr = g.undirected_csr()
    for u in range(g.n):
        for v in range(g.n):
            if u != v:
                assert (d[u, v] == 1) == csr.has_edge(u, v)


@given(owned_digraphs())
@settings(max_examples=60, deadline=None)
def test_components_consistent_with_distances(g):
    labels, k = connected_components(g)
    d = all_pairs_distances(g.undirected_csr())
    for u in range(g.n):
        for v in range(g.n):
            same = labels[u] == labels[v]
            assert same == (d[u, v] != UNREACHABLE)
    assert is_connected(g) == (k == 1)


@given(owned_digraphs())
@settings(max_examples=60, deadline=None)
def test_diameter_is_max_eccentricity(g):
    ecc = eccentricities(g)
    assert diameter(g) == int(ecc.max())
    if not is_connected(g) and g.n > 1:
        assert diameter(g) == cinf(g.n)


@given(owned_digraphs(max_n=10))
@settings(max_examples=40, deadline=None)
def test_relabeling_preserves_diameter(g):
    # Graph isomorphism invariance under a random relabeling.
    rng = np.random.default_rng(0)
    perm = rng.permutation(g.n)
    h = OwnedDigraph(g.n)
    for u, v in g.arcs():
        h.add_arc(int(perm[u]), int(perm[v]))
    assert diameter(h) == diameter(g)
    assert sorted(eccentricities(h).tolist()) == sorted(eccentricities(g).tolist())


@given(owned_digraphs(max_n=10))
@settings(max_examples=40, deadline=None)
def test_adding_arc_never_increases_distances(g):
    d_before = distance_matrix(g)
    # Find a missing arc to add.
    for u in range(g.n):
        for v in range(g.n):
            if u != v and not g.has_arc(u, v):
                h = g.copy()
                h.add_arc(u, v)
                d_after = distance_matrix(h)
                assert (d_after <= d_before).all()
                return
