"""Unit tests for distance aggregates under the Cinf convention."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError, VertexError
from repro.graphs import (
    OwnedDigraph,
    cinf,
    diameter,
    distance_matrix,
    distance_to_set,
    eccentricities,
    local_diameter,
    pairwise_distance,
    radius,
    sum_distances,
)


def test_cinf_is_n_squared():
    assert cinf(5) == 25
    assert cinf(1) == 1


def test_distance_matrix_connected(path5):
    d = distance_matrix(path5)
    assert d[0, 4] == 4
    assert d[1, 3] == 2
    assert (np.diag(d) == 0).all()


def test_distance_matrix_cinf_substitution(two_components):
    d = distance_matrix(two_components)
    assert d[0, 1] == 1
    assert d[0, 2] == cinf(5)
    assert d[4, 0] == cinf(5)
    raw = distance_matrix(two_components, apply_cinf=False)
    assert raw[0, 2] == -1


def test_eccentricities_and_diameter(path5):
    ecc = eccentricities(path5)
    assert ecc.tolist() == [4, 3, 2, 3, 4]
    assert diameter(path5) == 4
    assert radius(path5) == 2


def test_disconnected_local_diameter_is_cinf(two_components):
    # Paper: in a disconnected graph every local diameter is n^2.
    ecc = eccentricities(two_components)
    assert (ecc == cinf(5)).all()
    assert diameter(two_components) == cinf(5)


def test_single_vertex():
    g = OwnedDigraph(1)
    assert diameter(g) == 0
    assert eccentricities(g).tolist() == [0]
    assert local_diameter(g, 0) == 0
    assert sum_distances(g).tolist() == [0]


def test_local_diameter_matches_eccentricity(path5):
    ecc = eccentricities(path5)
    for u in range(5):
        assert local_diameter(path5, u) == ecc[u]


def test_sum_distances(path5):
    s = sum_distances(path5)
    assert s[0] == 1 + 2 + 3 + 4
    assert s[2] == 2 + 1 + 1 + 2


def test_sum_distances_disconnected(two_components):
    s = sum_distances(two_components)
    # vertex 0: dist 1 to vertex 1, Cinf to 2, 3, 4.
    assert s[0] == 1 + 3 * cinf(5)
    # isolated vertex 4: Cinf to everyone.
    assert s[4] == 4 * cinf(5)


def test_pairwise_distance(path5, two_components):
    assert pairwise_distance(path5, 0, 3) == 3
    assert pairwise_distance(two_components, 0, 3) == cinf(5)


def test_distance_to_set(path5):
    d = distance_to_set(path5, [0, 4])
    assert d.tolist() == [0, 1, 2, 1, 0]


def test_distance_to_set_empty_rejected(path5):
    with pytest.raises(GraphError):
        distance_to_set(path5, [])


def test_distance_to_set_unreachable(two_components):
    d = distance_to_set(two_components, [0])
    assert d[1] == 1
    assert d[2] == cinf(5)


def test_brace_distance_is_one(brace_pair):
    assert pairwise_distance(brace_pair, 0, 1) == 1
    assert diameter(brace_pair) == 1


# ----------------------------------------------------------------------
# Kernel-routed helpers vs the full-matrix reference (PR-6 differential)
# ----------------------------------------------------------------------
def test_pairwise_distance_matches_matrix_on_random_digraphs(rng):
    from conftest import random_owned_digraph

    for _ in range(12):
        n = int(rng.integers(2, 15))
        g = random_owned_digraph(rng, n, p=float(rng.uniform(0.05, 0.5)))
        ref = distance_matrix(g, apply_cinf=True)
        for u in range(n):
            for v in range(n):
                assert pairwise_distance(g, u, v) == int(ref[u, v])


def test_distance_to_set_matches_matrix_on_random_digraphs(rng):
    from conftest import random_owned_digraph

    for _ in range(10):
        n = int(rng.integers(2, 15))
        g = random_owned_digraph(rng, n, p=float(rng.uniform(0.05, 0.5)))
        ref = distance_matrix(g, apply_cinf=True)
        k = int(rng.integers(1, n + 1))
        targets = rng.choice(n, size=k, replace=False)
        assert np.array_equal(
            distance_to_set(g, targets), ref[:, targets].min(axis=1)
        )


def test_local_diameter_matches_matrix_and_validates(rng):
    from conftest import random_owned_digraph

    for _ in range(10):
        n = int(rng.integers(1, 14))
        g = random_owned_digraph(rng, n, p=0.3)
        ecc = eccentricities(g)
        for u in range(n):
            assert local_diameter(g, u) == int(ecc[u])
    with pytest.raises(VertexError):
        local_diameter(g, g.n)
    with pytest.raises(VertexError):
        local_diameter(g, -1)


def test_local_diameter_single_vertex_validates_before_trivial_return():
    g = OwnedDigraph(1)
    assert local_diameter(g, 0) == 0
    # n == 1 must not short-circuit past the bounds check.
    with pytest.raises(VertexError):
        local_diameter(g, 1)
