"""Tests for the Section 6 weighted weak-equilibrium machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    WeightedRealization,
    check_lemma_6_4,
    fold_all_poor_leaves,
    fold_poor_leaf,
    is_weighted_weak_equilibrium,
    poor_leaves,
    rich_leaves,
    weighted_sum_cost,
)
from repro.core import BoundedBudgetGame, best_response_dynamics
from repro.errors import GraphError
from repro.graphs import OwnedDigraph, path_realization, star_realization


def test_unit_weights_cost_matches_unweighted():
    from repro.core import vertex_cost

    g = path_realization(6)
    wr = WeightedRealization.unit(g)
    for u in range(6):
        assert weighted_sum_cost(wr, u) == vertex_cost(g, u, "sum")


def test_weights_validation():
    g = path_realization(3)
    with pytest.raises(GraphError):
        WeightedRealization(graph=g, weights=np.array([1, 1]))
    with pytest.raises(GraphError):
        WeightedRealization(graph=g, weights=np.array([1, -1, 1]))


def test_weighted_cost_scales_with_weights():
    g = path_realization(3)  # 0 - 1 - 2
    wr = WeightedRealization(graph=g.copy(), weights=np.array([1, 1, 10]))
    # c(0) = w(1)*1 + w(2)*2 = 21.
    assert weighted_sum_cost(wr, 0) == 21
    assert weighted_sum_cost(wr, 2) == 10 * 0 + 1 * 1 + 1 * 2


def test_poor_and_rich_leaves():
    # 0 -> 1 (1 is a poor leaf), 2 -> 0 (2 is a rich leaf); star-ish.
    g = OwnedDigraph(3)
    g.add_arc(0, 1)
    g.add_arc(2, 0)
    wr = WeightedRealization.unit(g)
    assert poor_leaves(wr) == [1]
    assert rich_leaves(wr) == [2]


def test_fold_poor_leaf_transfers_weight():
    g = OwnedDigraph(4)
    g.add_arc(0, 1)
    g.add_arc(0, 2)
    g.add_arc(3, 0)
    wr = WeightedRealization.unit(g)
    assert set(poor_leaves(wr)) == {1, 2}
    folded = fold_poor_leaf(wr, 1)
    assert folded.weights.tolist() == [2, 0, 1, 1]
    assert not folded.graph.has_arc(0, 1)
    assert folded.total_weight() == wr.total_weight()
    # Original is untouched.
    assert wr.weights.tolist() == [1, 1, 1, 1]


def test_fold_rejects_non_poor_vertices():
    g = path_realization(4)
    wr = WeightedRealization.unit(g)
    with pytest.raises(GraphError):
        fold_poor_leaf(wr, 1)  # interior vertex


def test_fold_all_poor_leaves_terminates():
    # A directed star: all leaves poor; folding collapses to the center.
    g = star_realization(6, 0, center_owns=True)
    wr = WeightedRealization.unit(g)
    folded = fold_all_poor_leaves(wr)
    assert poor_leaves(folded) == []
    assert folded.weights[0] == 6
    assert folded.total_weight() == 6


def test_folding_preserves_weak_equilibrium():
    # Take a SUM equilibrium found by exact dynamics, fold poor leaves,
    # and verify weak equilibrium is preserved at every step (the paper's
    # claim after Lemma 6.2).
    game = BoundedBudgetGame([1, 1, 1, 1, 2, 0, 0])
    res = best_response_dynamics(
        game, game.random_realization(seed=2, connected=True), "sum", max_rounds=100
    )
    assert res.converged
    wr = WeightedRealization.unit(res.graph)
    assert is_weighted_weak_equilibrium(wr)
    current = wr
    while poor_leaves(current):
        current = fold_poor_leaf(current, poor_leaves(current)[0])
        assert is_weighted_weak_equilibrium(current), "folding broke weak equilibrium"


def test_lemma_6_4_on_equilibria():
    # Rich leaves of (weighted) weak equilibria are within distance 2.
    for seed in range(4):
        game = BoundedBudgetGame([1] * 9)
        res = best_response_dynamics(
            game, game.random_realization(seed=seed), "sum", max_rounds=100
        )
        assert res.converged
        wr = WeightedRealization.unit(res.graph)
        report = check_lemma_6_4(wr)
        assert report.holds, (seed, report)


def test_lemma_6_4_violated_on_non_equilibrium():
    # A long path has rich leaves far apart — and is not an equilibrium.
    g = OwnedDigraph(6)
    g.add_arc(0, 1)
    for i in range(1, 5):
        g.add_arc(i, i + 1)
    g_rev = OwnedDigraph(6)
    g_rev.add_arc(0, 1)
    g_rev.add_arc(5, 4)
    for i in range(1, 4):
        g_rev.add_arc(i, i + 1)
    wr = WeightedRealization.unit(g_rev)
    assert set(rich_leaves(wr)) == {0, 5}
    report = check_lemma_6_4(wr)
    assert not report.holds
    assert not is_weighted_weak_equilibrium(wr)


# ----------------------------------------------------------------------
# weighted_swap_check: the Section 6 point verdict (PR-6)
# ----------------------------------------------------------------------
def test_weighted_swap_check_grid_matches_swap_improves():
    from conftest import random_owned_digraph

    from repro.analysis.weighted import (
        WeightedRealization,
        _weighted_swap_improves,
        weighted_swap_check,
    )
    from repro.core.distance_cache import WeightedDistanceCache

    rng = np.random.default_rng(5)
    for _ in range(6):
        n = int(rng.integers(4, 10))
        g = random_owned_digraph(rng, n, p=0.35)
        weights = rng.integers(1, 6, n)
        wr = WeightedRealization(graph=g, weights=weights)
        caches = [None, WeightedDistanceCache(g), WeightedDistanceCache(g, rows="lazy")]
        for u in range(n):
            cur = tuple(int(v) for v in g.out_neighbors(u))
            if not cur:
                continue
            pool = [v for v in range(n) if v != u and v not in cur]
            found = False
            for drop in cur:
                for add in pool:
                    verdicts = {
                        weighted_swap_check(wr, u, drop, add, cache=c)
                        for c in caches
                    }
                    assert len(verdicts) == 1, (u, drop, add)
                    found = found or verdicts.pop()
            assert found == _weighted_swap_improves(wr, u)


def test_weighted_swap_check_validates_move_set():
    from repro.analysis.weighted import WeightedRealization, weighted_swap_check
    from repro.errors import GameError

    g = path_realization(5)
    wr = WeightedRealization.unit(g)
    wr.weights[4] = 0  # a folded ghost
    with pytest.raises(GameError):
        weighted_swap_check(wr, 0, 3, 2)  # 0 owns no arc to 3
    with pytest.raises(GameError):
        weighted_swap_check(wr, 0, 1, 0)  # self-link
    with pytest.raises(GameError):
        weighted_swap_check(wr, 1, 2, 2)  # already owned
    with pytest.raises(GameError):
        weighted_swap_check(wr, 0, 1, 4)  # ghost target


def test_weighted_swap_check_cold_path_touches_few_rows():
    """A one-off cold verdict must materialise only the rows of
    cur ∪ In(u) ∪ {add}, never promote to a full matrix."""
    from repro.analysis.weighted import WeightedRealization, WeightedSwapEnvironment
    from repro.graphs import weighted_csr_from_csr
    from repro.graphs.weighted_engine import WeightedDistanceEngine

    g = path_realization(64)
    wr = WeightedRealization.unit(g)
    u = 5
    engine = WeightedDistanceEngine(
        weighted_csr_from_csr(g.undirected_csr_without(u)), rows="lazy"
    )
    env = WeightedSwapEnvironment(wr, u, engine=engine)
    env.check_swap(6, 40)
    assert engine.lazy
    assert engine.hot_rows().size <= 4  # cur(1) + In(u)(1) + add(1) + slack


def test_check_lemma_6_4_lazy_cache_matches_reference():
    from repro.analysis.weighted import WeightedRealization, check_lemma_6_4
    from repro.core.distance_cache import WeightedDistanceCache

    wr = WeightedRealization.unit(star_realization(6))
    ref = check_lemma_6_4(wr)
    for cache in (
        WeightedDistanceCache(wr.graph),
        WeightedDistanceCache(wr.graph, rows="lazy"),
    ):
        got = check_lemma_6_4(wr, cache=cache)
        assert got == ref
