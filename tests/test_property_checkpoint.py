"""Property suite for checkpoint records and journal recovery.

Two families of properties:

* **Frame round-trip** — ``decode_record(encode_record(r)) == r`` for
  randomly drawn records spanning every optional field (``None``
  counters, collected profiles, orbit probe vectors).
* **Crash-shaped journals** — a journal of random records subjected to
  a random suffix truncation or byte corruption always replays to a
  prefix of what was written, and replay/compaction recover the
  longest intact prefix: nothing fabricated, nothing past the first
  bad byte trusted, and compaction leaves a journal that replays
  identically and accepts further appends.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import (
    ShardCheckpoint,
    append_record,
    compact_journal,
    decode_record,
    encode_record,
    replay_journal,
    shard_journal_path,
)

_counters = st.dictionaries(
    st.sampled_from(["count", "eq_count", "opt", "best_eq", "worst_eq"]),
    st.one_of(st.none(), st.integers(min_value=0, max_value=10**9)),
    max_size=5,
)

_profile_key = st.lists(
    st.lists(st.integers(min_value=0, max_value=7), max_size=3).map(tuple),
    min_size=1,
    max_size=4,
).map(tuple)

_eq_profiles = st.one_of(
    st.none(), st.lists(_profile_key, max_size=4).map(tuple)
)

_orbit_vals = st.one_of(
    st.none(),
    st.lists(
        st.integers(min_value=0, max_value=2**64 - 1), min_size=1, max_size=8
    ).map(tuple),
)


@st.composite
def _records(draw) -> ShardCheckpoint:
    lo = draw(st.integers(min_value=0, max_value=10**6))
    span = draw(st.integers(min_value=0, max_value=10**6))
    hi = lo + span
    next_rank = draw(st.integers(min_value=lo, max_value=hi))
    return ShardCheckpoint(
        shard_id=draw(st.integers(min_value=0, max_value=9999)),
        lo=lo,
        hi=hi,
        next_rank=next_rank,
        attempt=draw(st.integers(min_value=0, max_value=50)),
        done=draw(st.booleans()),
        counters=draw(_counters),
        eq_profiles=draw(_eq_profiles),
        orbit_vals=draw(_orbit_vals),
    )


@settings(max_examples=120, deadline=None)
@given(record=_records())
def test_encode_decode_round_trip(record):
    assert decode_record(encode_record(record)) == record


@settings(max_examples=50, deadline=None)
@given(
    records=st.lists(_records(), min_size=1, max_size=6),
    cut=st.integers(min_value=1, max_value=200),
)
def test_truncated_journal_recovers_longest_prefix(records, cut):
    # A fresh directory per generated example (hypothesis reuses the
    # pytest fixture across examples, so tmp_path would accumulate).
    with tempfile.TemporaryDirectory() as tmp:
        _check_truncation(Path(tmp), records, cut)


def _check_truncation(tmp_path, records, cut):
    path = shard_journal_path(tmp_path, 0)
    sizes = []
    for rec in records:
        append_record(path, rec)
        sizes.append(path.stat().st_size)
    data = path.read_bytes()
    cut = min(cut, len(data) - 1)
    path.write_bytes(data[: len(data) - cut])
    # The good prefix is exactly the records whose frames survived whole.
    expect = sum(1 for s in sizes if s <= len(data) - cut)
    replay = replay_journal(path)
    assert replay.records == tuple(records[:expect])
    assert replay.good_bytes == (sizes[expect - 1] if expect else 0)
    # A cut landing exactly on a frame boundary leaves a *valid* journal
    # (the lost suffix is indistinguishable from never-written records);
    # any other cut leaves a torn tail.
    assert replay.truncated == (replay.good_bytes < len(data) - cut)


@settings(max_examples=50, deadline=None)
@given(
    records=st.lists(_records(), min_size=1, max_size=6),
    victim=st.integers(min_value=0, max_value=5),
    offset=st.integers(min_value=0, max_value=10**6),
    delta=st.integers(min_value=1, max_value=255),
)
def test_corrupted_journal_recovers_prefix_and_compacts(
    records, victim, offset, delta
):
    with tempfile.TemporaryDirectory() as tmp:
        _check_corruption(Path(tmp), records, victim, offset, delta)


def _check_corruption(tmp_path, records, victim, offset, delta):
    path = shard_journal_path(tmp_path, 0)
    frames = [encode_record(r) for r in records]
    victim = victim % len(frames)
    start = sum(len(f) for f in frames[:victim])
    offset = start + offset % len(frames[victim])
    data = bytearray(b"".join(frames))
    data[offset] = (data[offset] + delta) % 256
    path.write_bytes(bytes(data))

    replay = replay_journal(path)
    # Everything before the victim frame must survive intact, and the
    # replay must stop no later than the flipped byte's frame (CRC32
    # rejects it), so the recovered set is exactly the prefix.
    assert replay.records == tuple(records[:victim])
    assert replay.truncated

    compacted = compact_journal(path)
    assert not compacted.truncated
    assert compacted.records == replay.records
    # The compacted journal is a fully valid prefix: replaying it again
    # and appending to it both work.
    assert replay_journal(path).records == replay.records
    extra = records[-1]
    append_record(path, extra)
    assert replay_journal(path).records == replay.records + (extra,)
