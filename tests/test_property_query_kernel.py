"""Property-based tests for the bidirectional query kernel and the
lazy row-on-demand engine mode.

Four contracts, each driven by randomized instances:

* **query == matrix** — a bidirectional point-to-point answer is
  bit-identical to the corresponding full-matrix entry (including the
  ``Cinf`` sentinel on disconnected pairs), on unit substrates and on
  genuinely weighted ones;
* **lazy repair == recompute** — a lazy engine driven through an
  arbitrary arc-swap/deletion sequence answers every read exactly as a
  fresh full build of the final substrate would;
* **staleness** — epochs advance on lazy-engine mutations exactly as
  on full engines, so ``ensure_epoch`` raises
  :class:`~repro.errors.StaleDistanceError` for pre-mutation tokens;
* **promotion monotonicity** — the number of distinct row touches a
  lazy engine absorbs before promoting to full mode is nondecreasing
  in ``dirty_fraction`` (the threshold is ``max(1, dirty_fraction *
  n)`` under the fixed cost model).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StaleDistanceError
from repro.graphs import (
    DistanceEngine,
    OwnedDigraph,
    QueryStats,
    WeightedDistanceEngine,
    point_to_point,
    weighted_csr_from_csr,
)
from repro.graphs.weighted_engine import build_weighted_csr

from conftest import random_owned_digraph, random_strategy_swap


def _random_weighted_csr(rng: np.random.Generator, n: int, p: float, w_max: int):
    """Random symmetric weighted substrate with weights in [1, w_max]."""
    heads, tails, weights = [], [], []
    for a in range(n):
        for b in range(a + 1, n):
            if rng.random() < p:
                w = int(rng.integers(1, w_max + 1))
                heads += [a, b]
                tails += [b, a]
                weights += [w, w]
    return build_weighted_csr(
        n,
        np.asarray(heads, dtype=np.int64),
        np.asarray(tails, dtype=np.int64),
        np.asarray(weights, dtype=np.int64),
    )


# ----------------------------------------------------------------------
# query == full-matrix entry
# ----------------------------------------------------------------------
@given(
    n=st.integers(min_value=2, max_value=14),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40, deadline=None)
def test_unit_query_equals_matrix_entry(n, seed):
    rng = np.random.default_rng(seed)
    g = random_owned_digraph(rng, n, p=float(rng.uniform(0.05, 0.5)))
    csr = g.undirected_csr()
    engine = DistanceEngine(csr)
    ref = np.asarray(engine.matrix)
    for u in range(n):
        for v in range(n):
            stats = QueryStats()
            got = point_to_point(csr, u, v, stats=stats)
            assert got == int(ref[u, v])
            assert stats.settled <= 2 * n


@given(
    n=st.integers(min_value=2, max_value=12),
    seed=st.integers(min_value=0, max_value=2**31),
    w_max=st.integers(min_value=1, max_value=9),
)
@settings(max_examples=30, deadline=None)
def test_weighted_query_equals_matrix_entry(n, seed, w_max):
    rng = np.random.default_rng(seed)
    wcsr = _random_weighted_csr(rng, n, p=float(rng.uniform(0.1, 0.5)), w_max=w_max)
    engine = WeightedDistanceEngine(wcsr)
    ref = np.asarray(engine.matrix)
    for u in range(n):
        for v in range(n):
            assert point_to_point(wcsr, u, v) == int(ref[u, v])


@given(
    n=st.integers(min_value=2, max_value=12),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25, deadline=None)
def test_all_unit_weighted_substrate_degenerates_to_bfs_path(n, seed):
    """A weighted substrate whose weights are all 1 must answer exactly
    like the unit-CSR BFS fast path on the same edge set."""
    rng = np.random.default_rng(seed)
    g = random_owned_digraph(rng, n, p=float(rng.uniform(0.1, 0.5)))
    csr = g.undirected_csr()
    wcsr = weighted_csr_from_csr(csr)
    for u in range(n):
        for v in range(n):
            assert point_to_point(wcsr, u, v) == point_to_point(csr, u, v)


# ----------------------------------------------------------------------
# lazy repair == fresh recompute
# ----------------------------------------------------------------------
def _engines(csr, kind: str, **kwargs):
    if kind == "unit":
        return DistanceEngine(csr, **kwargs)
    return WeightedDistanceEngine(weighted_csr_from_csr(csr), **kwargs)


@pytest.mark.parametrize("kind", ["unit", "weighted-unit"])
@given(
    n=st.integers(min_value=3, max_value=12),
    seed=st.integers(min_value=0, max_value=2**31),
    warm=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_lazy_repair_equals_recompute_under_swap_sequences(kind, n, seed, warm):
    rng = np.random.default_rng(seed)
    g = random_owned_digraph(rng, n, p=0.3)
    lazy = _engines(g.undirected_csr(), kind, rows="lazy")
    if warm:
        lazy.ensure_rows(rng.integers(0, n, size=warm))
    for _ in range(6):
        random_strategy_swap(rng, g)
        sub = (
            g.undirected_csr()
            if kind == "unit"
            else weighted_csr_from_csr(g.undirected_csr())
        )
        lazy.update(sub)
        ref = np.asarray(_engines(g.undirected_csr(), kind).matrix)
        u, v = int(rng.integers(n)), int(rng.integers(n))
        assert lazy.query(u, v) == int(ref[u, v])
        if lazy.lazy:
            hot = lazy.hot_rows()
            if hot.size:
                s = int(hot[int(rng.integers(hot.size))])
                assert np.array_equal(lazy.row(s), ref[s])
    final = np.asarray(_engines(g.undirected_csr(), kind).matrix)
    assert np.array_equal(np.asarray(lazy.matrix), final)


@pytest.mark.parametrize("kind", ["unit", "weighted-unit"])
@given(
    n=st.integers(min_value=4, max_value=12),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=20, deadline=None)
def test_lazy_repair_equals_recompute_under_deletions(kind, n, seed):
    """Pure deletion sequences exercise the pendant / affected-region /
    dirty-row repair tiers on the hot subset."""
    rng = np.random.default_rng(seed)
    g = random_owned_digraph(rng, n, p=0.4)
    lazy = _engines(g.undirected_csr(), kind, rows="lazy")
    lazy.ensure_rows([0, n - 1])
    while True:
        csr = g.undirected_csr()
        edges = [(u, int(v)) for u in range(n) for v in csr.neighbors(u) if u < int(v)]
        if not edges:
            break
        x, y = edges[int(rng.integers(len(edges)))]
        if g.has_arc(x, y):
            g.remove_arc(x, y)
        if g.has_arc(y, x):  # a brace backs the same undirected edge
            g.remove_arc(y, x)
        lazy.remove_edge(x, y)
        ref = np.asarray(_engines(g.undirected_csr(), kind).matrix)
        if lazy.lazy:
            for s in lazy.hot_rows().tolist():
                assert np.array_equal(lazy.row(s), ref[s])
        else:
            assert np.array_equal(np.asarray(lazy.matrix), ref)


# ----------------------------------------------------------------------
# staleness contract
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", ["unit", "weighted-unit"])
@given(
    n=st.integers(min_value=3, max_value=10),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=20, deadline=None)
def test_lazy_engine_staleness_contract(kind, n, seed):
    rng = np.random.default_rng(seed)
    g = random_owned_digraph(rng, n, p=0.4)
    lazy = _engines(g.undirected_csr(), kind, rows="lazy")
    token = lazy.epoch
    lazy.ensure_epoch(token)
    # Reads never stale a token...
    lazy.query(0, n - 1)
    lazy.ensure_rows([0])
    lazy.ensure_epoch(token)
    # ...mutations always do.
    csr = g.undirected_csr()
    edges = [(u, int(v)) for u in range(n) for v in csr.neighbors(u) if u < int(v)]
    if not edges:
        return
    lazy.remove_edge(*edges[0])
    with pytest.raises(StaleDistanceError):
        lazy.ensure_epoch(token)


# ----------------------------------------------------------------------
# promotion threshold monotonicity
# ----------------------------------------------------------------------
def _touches_to_promote(kind: str, csr, dirty_fraction: float) -> int:
    """Distinct row touches absorbed before the engine leaves lazy mode."""
    engine = _engines(csr, kind, rows="lazy", dirty_fraction=dirty_fraction)
    for touched in range(csr.n):
        if not engine.lazy:
            return touched
        engine.ensure_rows([touched])
    return csr.n


@pytest.mark.parametrize("kind", ["unit", "weighted-unit"])
@given(
    n=st.integers(min_value=3, max_value=16),
    seed=st.integers(min_value=0, max_value=2**31),
    fractions=st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=2,
        max_size=4,
    ),
)
@settings(max_examples=25, deadline=None)
def test_promotion_touches_monotone_in_dirty_fraction(kind, n, seed, fractions):
    """Under the fixed cost model the promotion threshold is
    ``max(1, dirty_fraction * n)``, so the touches a lazy engine absorbs
    before promoting never decrease as ``dirty_fraction`` grows."""
    rng = np.random.default_rng(seed)
    g = random_owned_digraph(rng, n, p=0.3)
    csr = g.undirected_csr()
    prev_f, prev_touches = None, None
    for f in sorted(fractions):
        touches = _touches_to_promote(kind, csr, f)
        engine = _engines(csr, kind, rows="lazy", dirty_fraction=f)
        assert engine.promotion_threshold() == max(1.0, f * n)
        if prev_f is not None:
            assert touches >= prev_touches, (prev_f, f)
        prev_f, prev_touches = f, touches
