"""Tests for the Lemma 5.2 overlap graph (MAX, Ω(√log n) lower bound)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.constructions import (
    index_to_word,
    lemma_5_2_condition,
    overlap_graph_edges,
    overlap_graph_equilibrium,
    word_to_index,
)
from repro.core import certify_equilibrium
from repro.errors import ConstructionError
from repro.graphs import build_csr, diameter, is_connected


def test_word_index_roundtrip():
    t, k = 5, 3
    for idx in range(t**k):
        word = index_to_word(idx, t, k)
        assert word_to_index(word, t) == idx
        assert len(word) == k
        assert all(0 <= s < t for s in word)


def test_word_index_validation():
    with pytest.raises(ConstructionError):
        word_to_index((0, 9), 3)


def test_lemma_condition_threshold():
    # (2t)^k - 1 < t^k (2t - 1)  <=>  t >= 2^(k-1) + 1.
    for k in (2, 3, 4):
        threshold = 2 ** (k - 1) + 1
        assert not lemma_5_2_condition(threshold - 1, k)
        assert lemma_5_2_condition(threshold, k)
        assert lemma_5_2_condition(threshold + 3, k)


def test_edges_match_shift_definition():
    t, k = 3, 2
    edges = set(overlap_graph_edges(t, k))
    # Check against a brute-force adjacency from the paper's definition.
    words = list(itertools.product(range(t), repeat=k))
    for x in words:
        for y in words:
            if x == y:
                continue
            shift1 = all(x[i] == y[i + 1] for i in range(k - 1))
            shift2 = all(y[i] == x[i + 1] for i in range(k - 1))
            xi, yi = word_to_index(x, t), word_to_index(y, t)
            edge = (min(xi, yi), max(xi, yi))
            if shift1 or shift2:
                assert edge in edges
            else:
                assert edge not in edges


def test_graph_size_and_degrees():
    t, k = 4, 2
    inst = overlap_graph_equilibrium(t, k)
    assert inst.n == t**k
    csr = inst.graph.undirected_csr()
    degs = csr.degrees()
    # Paper: min degree >= t - 1, max degree <= 2t.
    assert int(degs.min()) >= t - 1
    assert int(degs.max()) <= 2 * t


def test_diameter_is_k():
    for t, k in ((4, 2), (6, 3)):
        inst = overlap_graph_equilibrium(t, k)
        assert is_connected(inst.graph)
        assert diameter(inst.graph) == k


def test_positive_budgets():
    inst = overlap_graph_equilibrium(5, 2)
    assert (inst.budgets > 0).all()
    assert int(inst.budgets.sum()) == len(overlap_graph_edges(5, 2))


def test_no_braces():
    inst = overlap_graph_equilibrium(4, 2)
    assert inst.graph.braces() == []


def test_is_max_equilibrium_small():
    inst = overlap_graph_equilibrium(4, 2)
    cert = certify_equilibrium(inst.graph, "max", method="exact", max_candidates=None)
    assert cert.is_equilibrium, cert.summary()


def test_swap_stability_medium():
    inst = overlap_graph_equilibrium(5, 2)
    cert = certify_equilibrium(inst.graph, "max", method="swap")
    assert cert.is_equilibrium


def test_lemma_parameters_enforced():
    with pytest.raises(ConstructionError):
        overlap_graph_equilibrium(2, 3)  # t < 2^(k-1) + 1
    with pytest.raises(ConstructionError):
        overlap_graph_equilibrium(5, 3)  # t < 2k... (t=5 < 6)
    # But require_lemma=False allows building the raw graph.
    inst = overlap_graph_equilibrium(3, 2, require_lemma=False)
    assert inst.n == 9


def test_edges_validation():
    with pytest.raises(ConstructionError):
        overlap_graph_edges(3, 1)
    with pytest.raises(ConstructionError):
        overlap_graph_edges(1, 2)


def test_sqrt_log_diameter_relation():
    # With t = 2^k the diameter k equals sqrt(log2 n) exactly.
    t, k = 4, 2  # t = 2^k with k = 2
    inst = overlap_graph_equilibrium(t, k)
    assert np.isclose(np.sqrt(np.log2(inst.n)), k)
