"""Unit tests for the game specification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BoundedBudgetGame
from repro.errors import BudgetError, StrategyError
from repro.graphs import OwnedDigraph


def test_basic_properties():
    game = BoundedBudgetGame([2, 1, 0, 1])
    assert game.n == 4
    assert game.total_budget == 4
    assert not game.is_tree_game
    assert game.can_connect
    assert game.min_budget == 0
    assert not game.is_unit_game
    assert not game.all_positive


def test_tree_game_flag():
    assert BoundedBudgetGame([1, 1, 1, 0]).is_tree_game
    assert BoundedBudgetGame([1, 1]).is_unit_game
    assert BoundedBudgetGame([1, 2, 1]).all_positive


def test_budget_validation():
    with pytest.raises(BudgetError):
        BoundedBudgetGame([])
    with pytest.raises(BudgetError):
        BoundedBudgetGame([-1, 0])
    with pytest.raises(BudgetError):
        BoundedBudgetGame([3, 0, 0])  # b_i must be < n


def test_budgets_read_only():
    game = BoundedBudgetGame([1, 0])
    with pytest.raises(ValueError):
        game.budgets[0] = 5


def test_budget_accessor():
    game = BoundedBudgetGame([2, 0, 1])
    assert game.budget(0) == 2
    assert game.budget(1) == 0
    with pytest.raises(BudgetError):
        game.budget(3)


def test_validate_strategy():
    game = BoundedBudgetGame([2, 0, 0])
    assert game.validate_strategy(0, [1, 2]) == frozenset({1, 2})
    with pytest.raises(StrategyError):
        game.validate_strategy(0, [1])  # wrong size
    with pytest.raises(StrategyError):
        game.validate_strategy(0, [0, 1])  # self-link
    with pytest.raises(StrategyError):
        game.validate_strategy(0, [1, 7])  # out of range
    assert game.validate_strategy(1, []) == frozenset()


def test_realization_roundtrip():
    game = BoundedBudgetGame([1, 1, 1])
    g = game.realization([{1}, {2}, {0}])
    assert g.out_degrees().tolist() == [1, 1, 1]
    game.validate_realization(g)
    assert game.is_realization(g)


def test_realization_wrong_profile_size():
    game = BoundedBudgetGame([1, 1])
    with pytest.raises(StrategyError):
        game.realization([{1}])


def test_validate_realization_mismatch():
    game = BoundedBudgetGame([1, 1])
    g = OwnedDigraph(2)
    g.add_arc(0, 1)
    with pytest.raises(StrategyError):
        game.validate_realization(g)
    assert not game.is_realization(g)
    h = OwnedDigraph(3)
    with pytest.raises(StrategyError):
        game.validate_realization(h)


def test_random_realization_budgets():
    game = BoundedBudgetGame([2, 1, 0, 1, 1])
    g = game.random_realization(seed=5)
    game.validate_realization(g)
    g2 = game.random_realization(seed=5, connected=True)
    game.validate_realization(g2)
    from repro.graphs import is_connected

    assert is_connected(g2)


def test_equality_and_hash():
    a = BoundedBudgetGame([1, 2, 0])
    b = BoundedBudgetGame([1, 2, 0])
    c = BoundedBudgetGame([1, 2, 1])
    assert a == b
    assert a != c
    assert hash(a) == hash(b)
    assert a != "not a game"


def test_repr_long_vector():
    game = BoundedBudgetGame([1] * 20)
    assert "..." in repr(game)
    assert "BoundedBudgetGame" in repr(BoundedBudgetGame([1, 0]))
