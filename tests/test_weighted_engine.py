"""Weighted-engine-specific differential tests.

``scipy.sparse.csgraph.dijkstra`` and ``networkx`` serve as independent
oracles for the heap-free batched SSSP kernel and for every delta-repair
path (deletions, insertions, weight changes, the pendant fast path) on
seeded random *weighted* digraphs, including disconnected ones. A
dedicated section pins the weight-1 degeneration: unit-weight engines
must reproduce the BFS engine's matrices bit-for-bit (same values, same
dtype, same sentinel). Behavior shared with the unit engine on
unit-weight substrates — oracle builds, repair-equals-recompute,
rollback/noop, staleness, read-only views, snapshot copy-on-write — is
covered once for both engines in ``test_engine_conformance.py``.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from scipy.sparse.csgraph import dijkstra

from repro.errors import GraphError
from repro.graphs import (
    UNREACHABLE,
    DistanceEngine,
    EdgeWeightMap,
    OwnedDigraph,
    WeightedDistanceEngine,
    build_weighted_csr,
    cinf,
    weighted_csr_from_csr,
    weighted_csr_without_vertex,
)

from conftest import random_owned_digraph


def random_weighted_edges(
    rng: np.random.Generator, n: int, density: float = 0.3, max_w: int = 6
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Random undirected edge list with integer weights in [1, max_w]."""
    heads, tails = [], []
    for x in range(n):
        for y in range(x + 1, n):
            if rng.random() < density:
                heads.append(x)
                tails.append(y)
    m = len(heads)
    w = rng.integers(1, max_w + 1, size=m)
    return (
        np.asarray(heads, dtype=np.int64),
        np.asarray(tails, dtype=np.int64),
        np.asarray(w, dtype=np.int64),
    )


def scipy_weighted_oracle(
    n: int, heads: np.ndarray, tails: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """All-pairs weighted distances via scipy, UNREACHABLE for inf."""
    mat = sp.lil_matrix((n, n), dtype=np.float64)
    for x, y, w in zip(heads, tails, weights):
        cur = mat[x, y]
        if cur == 0 or cur > w:
            mat[x, y] = w
            mat[y, x] = w
    dist = dijkstra(mat.tocsr(), directed=False)
    out = np.full((n, n), UNREACHABLE, dtype=np.int64)
    finite = np.isfinite(dist)
    out[finite] = dist[finite].astype(np.int64)
    return out


def networkx_weighted_oracle(
    n: int, heads: np.ndarray, tails: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """All-pairs weighted distances via networkx Dijkstra."""
    import networkx as nx

    G = nx.Graph()
    G.add_nodes_from(range(n))
    for x, y, w in zip(heads, tails, weights):
        x, y, w = int(x), int(y), int(w)
        if G.has_edge(x, y):
            w = min(w, G[x][y]["weight"])
        G.add_edge(x, y, weight=w)
    out = np.full((n, n), UNREACHABLE, dtype=np.int64)
    for s, lengths in nx.all_pairs_dijkstra_path_length(G, weight="weight"):
        for v, d in lengths.items():
            out[s, v] = int(d)
    return out


# ----------------------------------------------------------------------
# Batched Dial kernel vs oracles
# ----------------------------------------------------------------------
def test_initial_build_matches_scipy_and_networkx(rng):
    for _ in range(12):
        n = int(rng.integers(2, 16))
        heads, tails, w = random_weighted_edges(rng, n, float(rng.uniform(0.1, 0.5)))
        engine = WeightedDistanceEngine(build_weighted_csr(n, heads, tails, w))
        got = engine.distances()
        assert np.array_equal(got, scipy_weighted_oracle(n, heads, tails, w))
        assert np.array_equal(got, networkx_weighted_oracle(n, heads, tails, w))


def test_distances_from_batched_rows_match_oracle(rng):
    for _ in range(8):
        n = int(rng.integers(3, 18))
        heads, tails, w = random_weighted_edges(rng, n, 0.3)
        engine = WeightedDistanceEngine(build_weighted_csr(n, heads, tails, w))
        oracle = scipy_weighted_oracle(n, heads, tails, w)
        oracle[oracle == UNREACHABLE] = engine.inf
        k = int(rng.integers(1, n + 1))
        sources = rng.choice(n, size=k, replace=False)
        rows = engine.distances_from(sources)
        assert np.array_equal(rows, oracle[sources])
        buf = np.empty((k, n), dtype=rows.dtype)
        out = engine.distances_from(sources, out=buf)
        assert out is buf
        assert np.array_equal(buf, rows)


def test_parallel_edges_collapse_to_lightest():
    # Two copies of {0, 1} with different lengths: distances use the min.
    wcsr = build_weighted_csr(
        2, np.array([0, 1]), np.array([1, 0]), np.array([5, 2])
    )
    engine = WeightedDistanceEngine(wcsr)
    assert engine.distance(0, 1) == 2


def test_disconnected_graph_uses_unreachable_sentinel():
    wcsr = build_weighted_csr(
        5, np.array([0, 2]), np.array([1, 3]), np.array([3, 4])
    )
    engine = WeightedDistanceEngine(wcsr)
    assert engine.distance(0, 1) == 3
    assert engine.distance(2, 3) == 4
    assert engine.distance(0, 2) == UNREACHABLE
    assert engine.distance(4, 4) == 0
    # Internally unreachable pairs carry the finite sentinel.
    assert engine.matrix[0, 2] == engine.inf


# ----------------------------------------------------------------------
# Weight-1 degeneration: bit-identical to the BFS engine
# ----------------------------------------------------------------------
def test_unit_weights_degenerate_to_bfs_engine(rng):
    for _ in range(10):
        n = int(rng.integers(2, 16))
        g = random_owned_digraph(rng, n, p=float(rng.uniform(0.1, 0.4)))
        csr = g.undirected_csr()
        bfs_engine = DistanceEngine(csr)
        dial_engine = WeightedDistanceEngine(weighted_csr_from_csr(csr))
        assert dial_engine.inf == bfs_engine.inf == cinf(n)
        assert dial_engine.matrix.dtype == bfs_engine.matrix.dtype
        assert np.array_equal(
            np.asarray(dial_engine.matrix), np.asarray(bfs_engine.matrix)
        )


def test_unit_weight_updates_track_bfs_engine(rng):
    g = random_owned_digraph(rng, 9, p=0.3)
    bfs_engine = DistanceEngine(g.undirected_csr())
    dial_engine = WeightedDistanceEngine(weighted_csr_from_csr(g.undirected_csr()))
    for _ in range(10):
        u = int(rng.integers(9))
        others = [v for v in range(9) if v != u]
        k = int(rng.integers(0, 4))
        new = rng.choice(others, size=k, replace=False) if k else []
        g.set_strategy(u, [int(v) for v in np.atleast_1d(new)])
        bfs_engine.update(g.undirected_csr())
        dial_engine.update(weighted_csr_from_csr(g.undirected_csr()))
        assert np.array_equal(
            np.asarray(dial_engine.matrix), np.asarray(bfs_engine.matrix)
        )


def test_isolated_substrate_matches_reference(rng):
    for _ in range(6):
        n = int(rng.integers(3, 12))
        heads, tails, w = random_weighted_edges(rng, n, 0.4)
        wcsr = build_weighted_csr(n, heads, tails, w)
        u = int(rng.integers(n))
        engine = WeightedDistanceEngine(weighted_csr_without_vertex(wcsr, u))
        keep = (heads != u) & (tails != u)
        ref = scipy_weighted_oracle(n, heads[keep], tails[keep], w[keep])
        assert np.array_equal(engine.distances(), ref)
        assert engine.wcsr.degree(u) == 0


# ----------------------------------------------------------------------
# Delta updates vs oracles
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dirty_fraction", [None, 1.0, 0.0])
def test_update_tracks_random_mutations(rng, dirty_fraction):
    kwargs = {} if dirty_fraction is None else {"dirty_fraction": dirty_fraction}
    for _ in range(5):
        n = int(rng.integers(3, 14))
        heads, tails, w = random_weighted_edges(rng, n, 0.35)
        engine = WeightedDistanceEngine(
            build_weighted_csr(n, heads, tails, w), max_weight=8, **kwargs
        )
        for _ in range(8):
            op = int(rng.integers(3))
            if op == 0 and heads.size:  # delete an edge
                i = int(rng.integers(heads.size))
                heads = np.delete(heads, i)
                tails = np.delete(tails, i)
                w = np.delete(w, i)
            elif op == 1:  # insert an edge
                x, y = int(rng.integers(n)), int(rng.integers(n))
                if x != y:
                    heads = np.append(heads, x)
                    tails = np.append(tails, y)
                    w = np.append(w, int(rng.integers(1, 9)))
            elif heads.size:  # change a weight
                i = int(rng.integers(heads.size))
                w[i] = int(rng.integers(1, 9))
            status = engine.update(build_weighted_csr(n, heads, tails, w))
            assert status in ("noop", "delta", "rebuild")
            if dirty_fraction == 0.0:
                assert status in ("noop", "rebuild")
            assert np.array_equal(
                engine.distances(), scipy_weighted_oracle(n, heads, tails, w)
            )


def test_weight_only_change_is_repaired(rng):
    # Same topology, one weight changed: must not read stale distances.
    heads = np.array([0, 1, 2, 0])
    tails = np.array([1, 2, 3, 3])
    w = np.array([2, 2, 2, 7])
    engine = WeightedDistanceEngine(build_weighted_csr(4, heads, tails, w), max_weight=9)
    assert engine.distance(0, 3) == 6  # 0-1-2-3
    w2 = np.array([2, 2, 2, 1])  # shortcut 0-3 now cheap
    status = engine.update(build_weighted_csr(4, heads, tails, w2))
    assert status in ("delta", "rebuild")
    assert engine.distance(0, 3) == 1
    assert engine.distance(1, 3) == 3  # 1-0-3
    w3 = np.array([2, 2, 2, 9])  # and expensive again
    engine.update(build_weighted_csr(4, heads, tails, w3))
    assert engine.distance(0, 3) == 6
    assert np.array_equal(engine.distances(), scipy_weighted_oracle(4, heads, tails, w3))


def test_pendant_removal_uses_column_fix():
    # Removing a leaf's only edge is repaired without any row recompute.
    g = OwnedDigraph(7)
    for i in range(6):
        g.add_arc(i, i + 1)
    engine = WeightedDistanceEngine(weighted_csr_from_csr(g.undirected_csr()))
    rows_before = engine.stats["rows_recomputed"]
    g.remove_arc(5, 6)
    status = engine.update(weighted_csr_from_csr(g.undirected_csr()))
    assert status == "delta"
    assert engine.stats["pendant_fixes"] == 1
    assert engine.stats["rows_recomputed"] == rows_before
    assert engine.distance(0, 6) == UNREACHABLE
    assert engine.distance(6, 6) == 0
    assert engine.distance(0, 5) == 5


def test_isolated_pair_removal():
    # Deleting the edge of an isolated K2 isolates both endpoints.
    wcsr = build_weighted_csr(
        4, np.array([0, 2]), np.array([1, 3]), np.array([1, 4])
    )
    engine = WeightedDistanceEngine(wcsr)
    smaller = build_weighted_csr(4, np.array([0]), np.array([1]), np.array([1]))
    status = engine.update(smaller)
    assert status == "delta"
    assert engine.stats["pendant_fixes"] == 2
    assert engine.distance(2, 3) == UNREACHABLE
    assert engine.distance(0, 1) == 1


def test_update_rejects_weight_overflow():
    engine = WeightedDistanceEngine(
        build_weighted_csr(4, np.array([0]), np.array([1]), np.array([2]))
    )
    huge = build_weighted_csr(4, np.array([0]), np.array([1]), np.array([10**6]))
    with pytest.raises(GraphError):
        engine.update(huge)


# ----------------------------------------------------------------------
# Diff-free single-edge entry points (the cache forwarder's API)
# ----------------------------------------------------------------------
def test_add_edge_matches_fresh_engine(rng):
    for _ in range(10):
        n = int(rng.integers(2, 12))
        heads, tails, w = random_weighted_edges(rng, n, 0.3)
        engine = WeightedDistanceEngine(
            build_weighted_csr(n, heads, tails, w), max_weight=8
        )
        present = set(zip(heads.tolist(), tails.tolist()))
        cands = [
            (x, y)
            for x in range(n)
            for y in range(x + 1, n)
            if (x, y) not in present
        ]
        if not cands:
            continue
        x, y = cands[int(rng.integers(len(cands)))]
        nw = int(rng.integers(1, 9))
        status = engine.add_edge(x, y, nw)
        assert status in ("delta", "rebuild")
        ref = scipy_weighted_oracle(
            n, np.append(heads, x), np.append(tails, y), np.append(w, nw)
        )
        assert np.array_equal(engine.distances(), ref)


def test_add_edge_validates_inputs():
    engine = WeightedDistanceEngine(
        build_weighted_csr(4, np.array([0]), np.array([1]), np.array([2])),
        max_weight=4,
    )
    with pytest.raises(GraphError):
        engine.add_edge(0, 1, 1)  # already present
    with pytest.raises(GraphError):
        engine.add_edge(2, 2, 1)  # self-loop
    with pytest.raises(GraphError):
        engine.add_edge(0, 4, 1)  # out of range
    with pytest.raises(GraphError):
        engine.add_edge(2, 3, 0)  # non-positive weight
    with pytest.raises(GraphError):
        engine.add_edge(2, 3, 10**6)  # sentinel overflow


def test_remove_then_add_edge_roundtrip(rng):
    heads = np.array([0, 1, 2, 3])
    tails = np.array([1, 2, 3, 4])
    w = np.array([2, 1, 3, 1])
    engine = WeightedDistanceEngine(build_weighted_csr(5, heads, tails, w), max_weight=4)
    before = engine.distances()
    engine.remove_edge(1, 2)
    engine.add_edge(1, 2, 1)
    assert np.array_equal(engine.distances(), before)


def test_sentinel_scales_with_max_weight():
    # Unit weights keep the paper's Cinf; heavy weights push it up so
    # every finite distance stays below the sentinel.
    unit = WeightedDistanceEngine(
        build_weighted_csr(4, np.array([0]), np.array([1]), np.array([1]))
    )
    assert unit.inf == cinf(4)
    heavy = WeightedDistanceEngine(
        build_weighted_csr(4, np.array([0]), np.array([1]), np.array([9])), max_weight=9
    )
    assert heavy.inf > (4 - 1) * 9


# ----------------------------------------------------------------------
# EdgeWeightMap
# ----------------------------------------------------------------------
def test_edge_weight_map_revision_and_lookup():
    ew = EdgeWeightMap()
    assert ew.is_unit() and ew.revision == 0
    ew.set_weight(2, 0, 5)
    assert ew.revision == 1
    assert ew.weight(0, 2) == 5 and ew.weight(2, 0) == 5
    assert ew.weight(0, 1) == 1
    assert ew.max_weight() == 5 and not ew.is_unit()
    with pytest.raises(GraphError):
        ew.set_weight(1, 1, 3)
    with pytest.raises(GraphError):
        ew.set_weight(0, 1, 0)
    with pytest.raises(GraphError):
        EdgeWeightMap(default=0)


def test_edge_weight_map_array_alignment():
    g = OwnedDigraph(4)
    g.add_arc(0, 1)
    g.add_arc(1, 2)
    g.add_arc(2, 3)
    ew = EdgeWeightMap(overrides={(1, 2): 7, (0, 3): 9})  # {0,3} absent: ignored
    csr = g.undirected_csr()
    wcsr = weighted_csr_from_csr(csr, ew)
    assert wcsr.edge_weight(1, 2) == 7
    assert wcsr.edge_weight(2, 1) == 7
    assert wcsr.edge_weight(0, 1) == 1
    engine = WeightedDistanceEngine(wcsr, max_weight=9)
    assert engine.distance(0, 3) == 1 + 7 + 1
